"""Unit tests for the xmodel container and the model zoo."""

import numpy as np
import pytest

from repro.errors import UnknownModelError, XModelFormatError
from repro.vitis.xmodel import MAGIC, XModel
from repro.vitis.zoo import (
    MODEL_NAMES,
    build_model,
    model_install_path,
)


class TestXModelSerialization:
    def test_roundtrip(self):
        model = build_model("resnet50_pt")
        rebuilt = XModel.parse(model.serialize())
        assert rebuilt == model
        assert rebuilt.name == "resnet50_pt"
        assert rebuilt.subgraph.input_height == model.subgraph.input_height

    def test_magic_at_start(self):
        blob = build_model("resnet50_pt").serialize()
        assert blob.startswith(MAGIC)

    def test_bad_magic_rejected(self):
        with pytest.raises(XModelFormatError):
            XModel.parse(b"NOPE" + b"\x00" * 100)

    def test_truncation_rejected(self):
        blob = build_model("squeezenet_pt").serialize()
        with pytest.raises(XModelFormatError):
            XModel.parse(blob[: len(blob) // 2])

    def test_trailing_garbage_rejected(self):
        blob = build_model("squeezenet_pt").serialize()
        with pytest.raises(XModelFormatError):
            XModel.parse(blob + b"\x00")

    def test_unsupported_version_rejected(self):
        blob = bytearray(build_model("squeezenet_pt").serialize())
        blob[4] = 99
        with pytest.raises(XModelFormatError):
            XModel.parse(bytes(blob))

    def test_serialized_blob_contains_name_strings(self):
        """The property the attack's step 4a depends on."""
        blob = build_model("resnet50_pt").serialize()
        assert b"resnet50_pt" in blob
        assert b"/usr/share/vitis_ai_library/models/resnet50_pt" in blob
        assert b"torchvision/resnet50" in blob

    def test_paper_fig11_fragments_present(self):
        """'ls/resnet50_pt/r' and 'hvision/resnet50' are substrings."""
        blob = build_model("resnet50_pt").serialize()
        assert b"ls/resnet50_pt/r" in blob
        assert b"hvision/resnet50" in blob

    def test_weight_nbytes_counts_payloads(self):
        model = build_model("resnet50_pt")
        total = sum(
            layer.weight_bytes().__len__() for layer in model.subgraph.layers
        )
        assert model.weight_nbytes() == total
        assert total > 0

    def test_rebuilt_subgraph_executes_identically(self):
        model = build_model("squeezenet_pt", input_hw=16)
        rebuilt = XModel.parse(model.serialize())
        blob = bytes(range(256)) * 3
        blob = (blob * 4)[: 16 * 16 * 3]
        assert model.subgraph.execute(blob) == rebuilt.subgraph.execute(blob)


class TestZoo:
    def test_zoo_has_eight_models(self):
        assert len(MODEL_NAMES) == 8
        assert "resnet50_pt" in MODEL_NAMES

    def test_unknown_model_rejected(self):
        with pytest.raises(UnknownModelError):
            build_model("alexnet_caffe")

    def test_install_path_format(self):
        assert model_install_path("resnet50_pt") == (
            "/usr/share/vitis_ai_library/models/resnet50_pt/resnet50_pt.xmodel"
        )

    def test_weights_deterministic(self):
        first = build_model("resnet50_pt")
        second = build_model("resnet50_pt")
        assert first.serialize() == second.serialize()

    def test_models_have_distinct_weights(self):
        resnet = build_model("resnet50_pt")
        squeeze = build_model("squeezenet_pt")
        assert resnet.serialize() != squeeze.serialize()

    def test_input_hw_override(self):
        model = build_model("resnet50_pt", input_hw=64)
        assert model.subgraph.input_height == 64

    def test_input_hw_too_small_rejected(self):
        with pytest.raises(ValueError):
            build_model("resnet50_pt", input_hw=4)

    def test_every_model_builds_and_executes(self):
        for name in MODEL_NAMES:
            model = build_model(name, input_hw=16)
            scores = model.subgraph.execute(b"\x40" * (16 * 16 * 3))
            assert len(scores) == model.subgraph.output_classes()

    def test_every_model_embeds_its_own_name(self):
        for name in MODEL_NAMES:
            assert name.encode() in build_model(name, input_hw=16).serialize()

    def test_frameworks_match_suffix(self):
        for name in MODEL_NAMES:
            model = build_model(name, input_hw=16)
            if name.endswith("_pt"):
                assert model.framework == "pytorch"
            else:
                assert model.framework == "tensorflow"

    def test_resnet_models_contain_resblocks(self):
        model = build_model("resnet50_pt", input_hw=16)
        kinds = {layer.kind for layer in model.subgraph.layers}
        assert "resblock" in kinds

    def test_macs_scale_with_input_size(self):
        small = build_model("resnet50_pt", input_hw=16)
        large = build_model("resnet50_pt", input_hw=64)
        assert large.subgraph.macs > small.subgraph.macs
