"""Tests for the canned experiment scenarios."""

import pytest

from repro.evaluation.scenarios import (
    BoardSession,
    attack_under_config,
    multi_tenant_scrub_experiment,
    reuse_decay_experiment,
    run_paper_attack,
)
from repro.hw.board import ZCU102
from repro.petalinux.kernel import KernelConfig
from repro.petalinux.sanitizer import SanitizePolicy

INPUT_HW = 32


class TestBoardSession:
    def test_boot_defaults_to_zcu104(self, session):
        assert session.soc.board.name == "ZCU104"

    def test_boot_zcu102(self):
        session = BoardSession.boot(board=ZCU102, input_hw=INPUT_HW)
        assert session.soc.board.name == "ZCU102"
        assert session.kernel.allocator.total_frames == (4 * 1024**3) // 4096

    def test_two_distinct_users(self, session):
        assert session.attacker_shell.user.uid != session.victim_shell.user.uid

    def test_add_tenant(self, session):
        shell = session.add_tenant("guest_b", 1003, "pts/2")
        assert shell.user.name == "guest_b"
        assert shell.kernel is session.kernel


class TestRunPaperAttack:
    def test_vulnerable_default_leaks_everything(self, session):
        outcome = run_paper_attack(session)
        assert outcome.model_identified_correctly
        assert outcome.image_recovered_exactly
        assert outcome.report.reconstruction.corruption_marker_seen

    def test_different_victim_model(self):
        session = BoardSession.boot(input_hw=INPUT_HW)
        outcome = run_paper_attack(session, victim_model="mobilenet_v2_tf")
        assert outcome.model_identified_correctly

    def test_supplied_profile_store_reused(self, session):
        profiles = session.profile(["resnet50_pt", "squeezenet_pt"])
        outcome = run_paper_attack(session, profiles=profiles)
        assert outcome.model_identified_correctly


class TestAttackUnderConfig:
    def test_vulnerable_config_succeeds(self):
        outcome = attack_under_config(KernelConfig(), "vulnerable")
        assert outcome.attack_succeeded
        assert outcome.steps_completed == 4
        assert outcome.failed_step is None

    def test_zero_on_free_defeats_analysis(self):
        outcome = attack_under_config(
            KernelConfig(sanitize_policy=SanitizePolicy.ZERO_ON_FREE),
            "zero-on-free",
        )
        assert not outcome.attack_succeeded
        assert outcome.failed_step == "step 4 (analysis)"

    def test_pagemap_lockdown_defeats_harvest(self):
        outcome = attack_under_config(
            KernelConfig(pagemap_world_readable=False), "pagemap-lockdown"
        )
        assert not outcome.attack_succeeded
        assert outcome.failed_step == "step 2 (address harvest)"

    def test_strict_devmem_defeats_extraction(self):
        outcome = attack_under_config(
            KernelConfig(devmem_unrestricted=False), "strict-devmem"
        )
        assert not outcome.attack_succeeded
        assert outcome.failed_step == "step 3 (extraction)"

    def test_hardened_defeats_attack_early(self):
        outcome = attack_under_config(KernelConfig().hardened(), "hardened")
        assert not outcome.attack_succeeded
        assert outcome.steps_completed < 4


class TestReuseDecay:
    def test_recovery_decays_with_fillers(self):
        points = reuse_decay_experiment([0, 8], input_hw=INPUT_HW)
        assert points[0].image_recovery_rate > 0.99
        assert points[1].image_recovery_rate < points[0].image_recovery_rate
        assert points[1].frames_surviving_fraction < 1.0

    def test_zero_fillers_full_survival(self):
        points = reuse_decay_experiment([0], input_hw=INPUT_HW)
        assert points[0].frames_surviving_fraction == 1.0


class TestMultiTenantScrub:
    def test_contiguous_scrub_corrupts_cotenant(self):
        outcomes = {o.strategy: o for o in multi_tenant_scrub_experiment(INPUT_HW)}
        contiguous = outcomes["contiguous_range"]
        per_page = outcomes["per_page"]
        # Both strategies clear the victim residue...
        assert contiguous.victim_residue_cleared
        assert per_page.victim_residue_cleared
        # ...but only per-page scrubbing spares the live co-tenant.
        assert not contiguous.cotenant_data_intact
        assert per_page.cotenant_data_intact
