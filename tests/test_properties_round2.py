"""Second round of property-based tests: OS-level invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.dram import PAGE_SIZE, DramDevice
from repro.mmu.address_space import AddressSpace, VmaKind
from repro.mmu.frame_alloc import FrameAllocator
from repro.petalinux.sanitizer import SanitizePolicy, Sanitizer
from repro.petalinux.xen import XenDeployment, XenDomain


def _space() -> AddressSpace:
    dram = DramDevice(capacity=512 * PAGE_SIZE)
    return AddressSpace(
        allocator=FrameAllocator(total_frames=512), memory=dram, owner=1
    )


# -- address-space I/O invariants ------------------------------------------------

@given(
    offsets_and_payloads=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6 * PAGE_SIZE),
            st.binary(min_size=1, max_size=128),
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=40)
def test_virtual_io_matches_shadow_model(offsets_and_payloads):
    """read_virtual/write_virtual behave like a flat bytearray."""
    space = _space()
    heap_base = 0xAAAA_EE77_5000
    space.create_heap(heap_base, 8 * PAGE_SIZE)
    shadow = bytearray(8 * PAGE_SIZE)
    for offset, payload in offsets_and_payloads:
        space.write_virtual(heap_base + offset, payload)
        shadow[offset : offset + len(payload)] = payload
    assert space.read_virtual(heap_base, len(shadow)) == bytes(shadow)


@given(
    lengths=st.lists(
        st.integers(min_value=1, max_value=3 * PAGE_SIZE),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=40)
def test_physical_segments_cover_exactly_the_request(lengths):
    """Scatter lists tile the VA range with no gaps or overlaps."""
    space = _space()
    heap_base = 0xAAAA_EE77_5000
    total = sum(lengths)
    space.create_heap(heap_base, total + PAGE_SIZE)
    cursor = heap_base
    for length in lengths:
        segments = space.physical_segments(cursor, length)
        assert sum(seg_len for _, seg_len in segments) == length
        assert all(seg_len > 0 for _, seg_len in segments)
        cursor += length


# -- sanitizer invariants -----------------------------------------------------------

@given(
    frame_groups=st.lists(
        st.lists(st.integers(min_value=0, max_value=63), unique=True,
                 min_size=1, max_size=16),
        min_size=1,
        max_size=6,
    ),
    rate=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=40)
def test_scrub_pool_eventually_scrubs_everything(frame_groups, rate):
    dram = DramDevice(capacity=64 * PAGE_SIZE)
    for page in range(64):
        dram.write(page * PAGE_SIZE, b"\xaa" * 64)
    sanitizer = Sanitizer(
        dram, policy=SanitizePolicy.SCRUB_POOL, scrub_rate_per_tick=rate
    )
    freed: set[int] = set()
    for group in frame_groups:
        fresh = [frame for frame in group if frame not in freed]
        sanitizer.on_free(fresh)
        freed |= set(fresh)
    while sanitizer.pending:
        assert sanitizer.tick() > 0
    for frame in freed:
        assert dram.read(frame * PAGE_SIZE, 64) == b"\x00" * 64


@given(
    frames=st.lists(st.integers(min_value=0, max_value=63), unique=True,
                    min_size=1, max_size=32)
)
@settings(max_examples=40)
def test_zero_on_free_touches_only_freed_frames(frames):
    dram = DramDevice(capacity=64 * PAGE_SIZE)
    for page in range(64):
        dram.write(page * PAGE_SIZE, b"\xbb" * 32)
    Sanitizer(dram, policy=SanitizePolicy.ZERO_ON_FREE).on_free(frames)
    for page in range(64):
        expected = b"\x00" * 32 if page in frames else b"\xbb" * 32
        assert dram.read(page * PAGE_SIZE, 32) == expected


# -- Xen domain invariants -------------------------------------------------------------

@st.composite
def disjoint_domains(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    boundaries = sorted(
        draw(
            st.lists(
                st.integers(min_value=0x100, max_value=0x10000),
                min_size=count + 1,
                max_size=count + 1,
                unique=True,
            )
        )
    )
    return [
        XenDomain(
            name=f"dom{i}",
            uids=frozenset({1000 + i}),
            frame_start=boundaries[i],
            frame_end=boundaries[i + 1],
        )
        for i in range(count)
    ]


@given(domains=disjoint_domains(), frame=st.integers(min_value=0, max_value=0x10000))
@settings(max_examples=60)
def test_every_frame_has_at_most_one_domain(domains, frame):
    deployment = XenDeployment(domains=domains)
    owners = [domain for domain in domains if domain.owns_frame(frame)]
    assert len(owners) <= 1
    resolved = deployment.domain_of_frame(frame)
    if owners:
        assert resolved is owners[0]
    else:
        assert resolved is None


# -- heap arena determinism --------------------------------------------------------------

@given(
    sizes=st.lists(st.integers(min_value=1, max_value=8192),
                   min_size=1, max_size=20)
)
@settings(max_examples=40)
def test_heap_arena_layout_is_a_pure_function_of_sizes(sizes):
    """The determinism the whole profiling methodology rests on."""
    from repro.hw.soc import ZynqMpSoC
    from repro.petalinux.kernel import PetaLinuxKernel
    from repro.petalinux.users import User

    layouts = []
    for _ in range(2):
        kernel = PetaLinuxKernel(ZynqMpSoC())
        process = kernel.spawn(["./app"], user=User("u", 1001))
        arena = process.heap_arena
        layouts.append([arena.allocate(size) for size in sizes])
    assert layouts[0] == layouts[1]
    # Allocations never overlap.
    spans = sorted(zip(layouts[0], sizes))
    for (start_a, size_a), (start_b, _) in zip(spans, spans[1:]):
        assert start_a + size_a <= start_b
