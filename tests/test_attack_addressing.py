"""Unit tests for attack step 2 — address harvesting."""

import pytest

from repro.attack.addressing import AddressHarvester
from repro.errors import AddressHarvestError, PermissionDeniedError
from repro.evaluation.scenarios import BoardSession
from repro.mmu.paging import PAGE_SIZE
from repro.petalinux.kernel import KernelConfig
from repro.petalinux.procfs import ProcFs
from repro.vitis.app import VictimApplication


@pytest.fixture
def harvester_and_run(shells):
    attacker_shell, victim_shell = shells
    run = VictimApplication(victim_shell).launch("resnet50_pt")
    harvester = AddressHarvester(attacker_shell.procfs, caller=attacker_shell.user)
    return harvester, run


class TestHeapRange:
    def test_reads_paper_heap_base(self, harvester_and_run):
        harvester, run = harvester_and_run
        start, end = harvester.read_heap_range(run.pid)
        assert start == 0xAAAA_EE77_5000
        assert end > start
        assert (end - start) % PAGE_SIZE == 0

    def test_no_heap_raises_harvest_error(self, shells, kernel):
        attacker_shell, _ = shells
        harvester = AddressHarvester(
            attacker_shell.procfs, caller=attacker_shell.user
        )
        # init (pid 1) has no VMAs at all.
        with pytest.raises(AddressHarvestError):
            harvester.read_heap_range(1)


class TestVirtualToPhysical:
    def test_offset_preserved_within_page(self, harvester_and_run):
        harvester, run = harvester_and_run
        heap_start, _ = harvester.read_heap_range(run.pid)
        physical = harvester.virtual_to_physical(run.pid, heap_start + 0x123)
        assert physical is not None
        assert physical % PAGE_SIZE == 0x123

    def test_unmapped_va_returns_none(self, harvester_and_run):
        harvester, run = harvester_and_run
        assert harvester.virtual_to_physical(run.pid, 0x1234_5000) is None

    def test_matches_ground_truth_translation(self, harvester_and_run):
        harvester, run = harvester_and_run
        address = run.runner.input_address
        physical = harvester.virtual_to_physical(run.pid, address)
        soc = run.kernel.soc
        expected = soc.dram_frame_to_physical(
            run.process.address_space.translate(address) >> 12
        ) + (address & 0xFFF)
        assert physical == expected


class TestHarvest:
    def test_covers_whole_heap(self, harvester_and_run):
        harvester, run = harvester_and_run
        harvested = harvester.harvest(run.pid)
        assert harvested.length == harvested.heap_end - harvested.heap_start
        assert len(harvested.translations) == harvested.length // PAGE_SIZE
        assert len(harvested.present_pages()) == len(harvested.translations)

    def test_translations_point_into_user_dram(self, harvester_and_run):
        harvester, run = harvester_and_run
        harvested = harvester.harvest(run.pid)
        for entry in harvested.present_pages():
            assert entry.physical_page_address >= 0x6000_0000

    def test_physical_of_interior_address(self, harvester_and_run):
        harvester, run = harvester_and_run
        harvested = harvester.harvest(run.pid)
        address = harvested.heap_start + 2 * PAGE_SIZE + 7
        physical = harvested.physical_of(address)
        assert physical % PAGE_SIZE == 7

    def test_physical_of_unsnapshotted_address_raises(self, harvester_and_run):
        harvester, run = harvester_and_run
        harvested = harvester.harvest(run.pid)
        with pytest.raises(AddressHarvestError):
            harvested.physical_of(harvested.heap_end + PAGE_SIZE)

    def test_hardened_kernel_blocks_harvest(self):
        session = BoardSession.boot(config=KernelConfig().hardened())
        run = session.victim_application().launch("resnet50_pt", infer=False)
        harvester = AddressHarvester(
            session.attacker_shell.procfs, caller=session.attacker_shell.user
        )
        with pytest.raises(PermissionDeniedError):
            harvester.harvest(run.pid)

    def test_pagemap_lockdown_alone_blocks_harvest(self):
        session = BoardSession.boot(
            config=KernelConfig(pagemap_world_readable=False)
        )
        run = session.victim_application().launch("resnet50_pt", infer=False)
        harvester = AddressHarvester(
            session.attacker_shell.procfs, caller=session.attacker_shell.user
        )
        # maps is still readable...
        start, _ = harvester.read_heap_range(run.pid)
        assert start
        # ...but the PFN disclosure is gone.
        with pytest.raises(PermissionDeniedError):
            harvester.harvest(run.pid)

    def test_victim_can_harvest_itself_under_procfs_lockdown(self):
        session = BoardSession.boot(
            config=KernelConfig(procfs_world_readable=False)
        )
        run = session.victim_application().launch("resnet50_pt", infer=False)
        own_harvester = AddressHarvester(
            session.victim_shell.procfs, caller=session.victim_shell.user
        )
        harvested = own_harvester.harvest(run.pid)
        assert harvested.present_pages()
