"""Distributed campaign fabric: protocol, leases, chaos, byte-identity.

The acceptance claims, pinned:

- a distributed run — any worker count, any claim order — writes a
  ``report.json`` **byte-identical** to a single-host uninterrupted
  run's, including under every scripted fault the chaos harness
  (:mod:`tests.fabric_chaos`) can throw: a worker killed mid-wave, a
  heartbeat dropped past the lease deadline (shard re-leased to a
  different worker), duplicate claims, replayed outcome streams, and
  torn byte streams;
- duplicate and replayed waves never double-count victims — the
  journal, the :class:`OutcomeAccumulator`, and the final report all
  see each ``job_id`` exactly once;
- the lease table is a fencing mechanism: expiry re-issues a board
  under a new epoch and every op under the old token is rejected;
- dumps travel by digest with verification on both ends: a corrupted
  upload or download raises instead of landing, and the wire paths
  leak no file descriptors (the ``test_zero_copy`` hygiene pattern);
- the fabric **self-heals**: connection drops, torn frames, stalls,
  partitions, and a coordinator killed and resumed mid-campaign are
  all survivable under a bounded retry budget — and none of it
  changes a byte of the final report.
"""

import base64
import hashlib
import json
import os
import socket
import threading
import time
from dataclasses import asdict, replace

import pytest

from fabric_chaos import (
    FAST_RETRY,
    ChaosScript,
    FaultPlan,
    FlakyProxy,
    build_coordinator,
    drain,
    drain_through_proxy,
    no_sleep,
    reference_report_bytes,
    restart_coordinator,
    run_chaos_drill,
)
from repro.campaign import CampaignSpec, prepare_offline_cached
from repro.campaign.runtime.fabric import (
    FabricClient,
    FabricCoordinator,
    FabricWorker,
    LeaseTable,
    ManualClock,
    ResilientFabricClient,
)
from repro.campaign.schedule import build_schedule, jobs_by_board
from repro.cli import main
from repro.errors import (
    DumpTransferError,
    FabricConnectionError,
    FabricProtocolError,
    FabricTimeoutError,
    RetryExhaustedError,
    StaleLeaseError,
)
from repro.utils.resilience import RetryPolicy

SPEC = CampaignSpec(boards=2, victims=8, seed=3)
"""Two boards, two waves each — big enough for mid-board faults."""

SMALL = CampaignSpec(boards=2, victims=4, seed=9)


# ---------------------------------------------------------------------------
# lease table state machine


class TestLeaseTable:
    def test_claims_issue_lowest_pending_board_with_epoch_tokens(self):
        clock = ManualClock()
        table = LeaseTable([0, 1, 2], ttl=30.0, clock=clock)
        first = table.claim("w1")
        second = table.claim("w2")
        assert (first.board, second.board) == (0, 1)
        assert first.token == "b0e1"
        assert table.claim("w3").board == 2
        assert table.claim("w4") is None  # everything leased out

    def test_expired_lease_is_reclaimed_and_reissued_under_new_epoch(self):
        clock = ManualClock()
        table = LeaseTable([0], ttl=30.0, clock=clock)
        stale = table.claim("w1")
        clock.advance(30.0)  # deadline is inclusive: now >= deadline
        fresh = table.claim("w2")
        assert fresh.board == 0
        assert fresh.epoch == stale.epoch + 1
        assert table.reclaims == 1
        with pytest.raises(StaleLeaseError):
            table.resolve(stale.token)

    def test_any_authenticated_op_extends_the_deadline(self):
        clock = ManualClock()
        table = LeaseTable([0], ttl=30.0, clock=clock)
        lease = table.claim("w1")
        clock.advance(20.0)
        table.touch(lease.token)  # heartbeat/wave at t=20 → deadline t=50
        clock.advance(20.0)
        assert table.touch(lease.token).board == 0  # alive at t=40
        clock.advance(31.0)
        with pytest.raises(StaleLeaseError):
            table.touch(lease.token)

    def test_completion_retires_the_token(self):
        table = LeaseTable([0], ttl=30.0, clock=ManualClock())
        lease = table.claim("w1")
        assert table.complete(lease.token) == 0
        assert table.done
        with pytest.raises(StaleLeaseError):
            table.complete(lease.token)


# ---------------------------------------------------------------------------
# protocol-level drills (raw clients against a live coordinator)


@pytest.fixture()
def coordinator(tmp_path):
    coord, clock = build_coordinator(SMALL, tmp_path, lease_ttl=30.0)
    coord.chaos_clock = clock
    try:
        yield coord
    finally:
        coord.close()


def _client(coordinator) -> FabricClient:
    host, port = coordinator.address
    return FabricClient(host, port)


class TestProtocol:
    def test_hello_ships_everything_a_board_simulation_needs(
        self, coordinator
    ):
        with _client(coordinator) as client:
            hello = client.request("hello", worker="w")
            assert hello["format"] == 1
            assert hello["spec"]["boards"] == SMALL.boards
            assert hello["defense_profile"] is None
            assert hello["lease_ttl"] == 30.0
            # prep round-trips by value, like the multiprocess executor
            assert isinstance(hello["profiles"], str)
            assert isinstance(hello["database"], dict)

    def test_unknown_op_and_torn_stream_leave_state_untouched(
        self, coordinator
    ):
        with _client(coordinator) as client:
            with pytest.raises(FabricProtocolError):
                client.request("frobnicate")
        # A torn frame: the coordinator answers bad-request and drops
        # the connection rather than guessing at a resync.
        with _client(coordinator) as client:
            client.send_raw(b'{"op": "wave", "lease": "b0e1", "outc')
            client.close()
        with _client(coordinator) as client:
            status = client.request("status")
            assert status["outcomes_journaled"] == 0
            assert status["boards_complete"] == 0

    def test_duplicate_claim_race_gets_distinct_boards_then_nothing(
        self, coordinator
    ):
        with _client(coordinator) as one, _client(coordinator) as two:
            first = one.request("claim", worker="w1")
            second = two.request("claim", worker="w2")
            assert first["board"] != second["board"]
            third = one.request("claim", worker="w1")
            assert third["board"] is None and third["done"] is False

    def test_wave_under_wrong_board_lease_is_rejected(self, coordinator):
        jobs = jobs_by_board(build_schedule(SMALL))
        with _client(coordinator) as client:
            claim = client.request("claim", worker="w")
            other_board = 1 - claim["board"]
            outcome = _fake_outcome(jobs, other_board)
            with pytest.raises(FabricProtocolError):
                client.request(
                    "wave",
                    lease=claim["lease"],
                    wave=0,
                    outcomes=[asdict(outcome)],
                )

    def test_fenced_worker_cannot_journal_after_reclaim(self, coordinator):
        clock = coordinator.chaos_clock
        jobs = jobs_by_board(build_schedule(SMALL))
        with _client(coordinator) as slow, _client(coordinator) as fast:
            stale = slow.request("claim", worker="slow")
            clock.advance(31.0)
            fresh = fast.request("claim", worker="fast")
            assert fresh["board"] == stale["board"]
            assert fresh["lease"] != stale["lease"]
            outcome = _fake_outcome(jobs, stale["board"])
            with pytest.raises(StaleLeaseError):
                slow.request(
                    "wave",
                    lease=stale["lease"],
                    wave=0,
                    outcomes=[asdict(outcome)],
                )
            with pytest.raises(StaleLeaseError):
                slow.request("heartbeat", lease=stale["lease"])
            with pytest.raises(StaleLeaseError):
                slow.request("board_complete", lease=stale["lease"])
            assert coordinator.status()["stale_rejections"] == 3

    def test_wave_citing_unuploaded_dump_is_rejected(self, coordinator):
        jobs = jobs_by_board(build_schedule(SMALL))
        with _client(coordinator) as client:
            claim = client.request("claim", worker="w")
            outcome = replace(
                _fake_outcome(jobs, claim["board"]),
                dump_sha256="ab" * 32,
                nbytes=2,
            )
            with pytest.raises(DumpTransferError):
                client.request(
                    "wave",
                    lease=claim["lease"],
                    wave=0,
                    outcomes=[asdict(outcome)],
                )


def _fake_outcome(jobs, board):
    """A plausible canonical outcome for *board*'s first job."""
    from repro.campaign.worker import VictimOutcome

    job = jobs[board][0]
    return VictimOutcome(
        job_id=job.job_id,
        board_index=board,
        board_name="ZCU104",
        model_name=job.model_name,
        tenant_index=job.tenant_index,
        launch_wave=job.launch_wave,
        pid=900,
        identified_model=None,
        pixel_match_rate=None,
        nbytes=0,
        devmem_reads=0,
        pages_read=0,
        wall_seconds=0.0,
    )


# ---------------------------------------------------------------------------
# spool fetch-by-digest over the wire


class TestWireSpool:
    def test_round_trip_by_digest(self, coordinator):
        payload = os.urandom(4096) + b"\x00" * 512
        digest = hashlib.sha256(payload).hexdigest()
        with _client(coordinator) as client:
            assert not client.request("has_dump", sha256=digest)["present"]
            receipt = client.put_dump(payload)
            assert receipt["deduplicated"] is False
            assert receipt["nbytes"] == len(payload)
            assert client.request("has_dump", sha256=digest)["present"]
            assert client.put_dump(payload)["deduplicated"] is True
            assert client.fetch_dump(digest) == payload
        # and it landed in the coordinator's content-addressed store
        assert coordinator.run_dir.spool.read(digest) == payload

    def test_empty_object_round_trips(self, coordinator):
        digest = hashlib.sha256(b"").hexdigest()
        with _client(coordinator) as client:
            client.put_dump(b"")
            assert client.fetch_dump(digest) == b""

    def test_corrupted_upload_is_rejected_and_never_lands(
        self, coordinator
    ):
        payload = b"honest bytes"
        lie = hashlib.sha256(b"different bytes").hexdigest()
        with _client(coordinator) as client:
            with pytest.raises(DumpTransferError):
                client.request(
                    "put_dump",
                    sha256=lie,
                    data=base64.b64encode(payload).decode("ascii"),
                )
        assert lie not in coordinator.run_dir.spool

    def test_corrupted_download_is_rejected_client_side(self, coordinator):
        # The client re-hashes what it fetched: a digest that does not
        # match the bytes (a tampering transport) must raise, not
        # return silently corrupt residue.
        payload = b"spooled residue"
        digest = hashlib.sha256(payload).hexdigest()
        coordinator.run_dir.spool.put_bytes(payload)
        # Overwrite the object file behind the store's back.
        coordinator.run_dir.spool.object_path(digest).write_bytes(
            b"tampered residue"
        )
        with _client(coordinator) as client:
            with pytest.raises(DumpTransferError):
                client.fetch_dump(digest)

    def test_unknown_digest_fetch_raises(self, coordinator):
        with _client(coordinator) as client:
            with pytest.raises(DumpTransferError):
                client.fetch_dump("00" * 32)

    def test_wire_paths_leak_no_file_descriptors(self, coordinator):
        payload = os.urandom(8192)
        digest = hashlib.sha256(payload).hexdigest()
        with _client(coordinator) as client:
            client.put_dump(payload)
            baseline = len(os.listdir("/proc/self/fd"))
            for _ in range(5):
                assert client.fetch_dump(digest) == payload
            # fetch maps and unmaps per request: the serving process's
            # fd table is flat again after every round trip
            assert len(os.listdir("/proc/self/fd")) == baseline


# ---------------------------------------------------------------------------
# chaos drills — the byte-identity contract under fire


@pytest.mark.slow
class TestChaos:
    def test_worker_count_and_claim_order_do_not_change_a_byte(
        self, tmp_path
    ):
        fabric, reference, status = run_chaos_drill(
            SPEC, tmp_path, plans=[], drain_concurrent=3
        )
        assert fabric == reference
        assert status["reclaims"] == 0

    def test_worker_killed_mid_wave_shard_releases_to_another_worker(
        self, tmp_path
    ):
        # The acceptance-criteria pin: die after one shipped wave
        # (dumps of the next wave already uploaded), lease expires,
        # a *different* worker re-runs the shard from scratch, and the
        # report is byte-identical to the uninterrupted local run.
        fabric, reference, status = run_chaos_drill(
            SPEC, tmp_path, plans=[FaultPlan(die_after_waves=1)]
        )
        assert fabric == reference
        assert status["reclaims"] >= 1
        assert status["duplicates_rejected"] >= 1  # replayed wave 0

    def test_mid_wave_death_with_orphaned_dumps(self, tmp_path):
        # die_after_waves=0: the first wave's dumps are uploaded but
        # its outcomes never ship — orphaned spool objects must not
        # perturb the report (content addressing reclaims them).
        fabric, reference, status = run_chaos_drill(
            SPEC, tmp_path, plans=[FaultPlan(die_after_waves=0)]
        )
        assert fabric == reference
        assert status["reclaims"] >= 1

    def test_heartbeat_dropped_past_deadline_board_rereleased(
        self, tmp_path
    ):
        # Worker finishes every wave but partitions before completing;
        # no heartbeats arrive, the lease dies, the board re-runs
        # entirely on a drain worker.
        fabric, reference, status = run_chaos_drill(
            SPEC, tmp_path, plans=[FaultPlan(abandon_before_complete=True)]
        )
        assert fabric == reference
        assert status["reclaims"] >= 1
        assert status["duplicates_rejected"] >= 2  # full board replayed

    def test_duplicate_wave_sends_do_not_double_count(self, tmp_path):
        fabric, reference, status = run_chaos_drill(
            SPEC, tmp_path, plans=[FaultPlan(duplicate_waves=True)]
        )
        assert fabric == reference
        # every wave shipped twice; exactly one copy journaled
        assert status["duplicates_rejected"] >= 2

    def test_replayed_outcomes_after_reconnect_do_not_double_count(
        self, tmp_path
    ):
        fabric, reference, status = run_chaos_drill(
            SPEC, tmp_path, plans=[FaultPlan(replay_on_reconnect=True)]
        )
        assert fabric == reference
        assert status["duplicates_rejected"] >= 2

    def test_torn_stream_mid_campaign(self, tmp_path):
        fabric, reference, status = run_chaos_drill(
            SPEC,
            tmp_path,
            plans=[FaultPlan(tear_stream_before_wave=1)],
        )
        assert fabric == reference
        assert status["reclaims"] >= 1

    def test_compound_chaos(self, tmp_path):
        # Several faulty workers in sequence against one campaign.
        fabric, reference, status = run_chaos_drill(
            SPEC,
            tmp_path,
            plans=[
                FaultPlan(die_after_waves=0),
                FaultPlan(duplicate_waves=True, abandon_before_complete=True),
                FaultPlan(tear_stream_before_wave=0),
            ],
            drain_concurrent=2,
        )
        assert fabric == reference
        assert status["reclaims"] >= 2

    def test_accumulator_counts_match_report_after_replay_storm(
        self, tmp_path
    ):
        # The coordinator's streaming accumulator (telemetry) must
        # agree with the journal-rebuilt report even after duplicate
        # and replayed waves — the no-double-count satellite.
        fabric, _, _ = run_chaos_drill(
            SPEC,
            tmp_path,
            plans=[
                FaultPlan(duplicate_waves=True, replay_on_reconnect=True)
            ],
        )
        report = json.loads(fabric)
        telemetry = json.loads(
            (tmp_path / "fabric" / "telemetry.json").read_text()
        )
        assert telemetry["victims_attacked"] == len(report["outcomes"])
        assert telemetry["victims_attacked"] == SPEC.victims


def _fd_count() -> int:
    return len(os.listdir("/proc/self/fd"))


@pytest.mark.skipif(
    not os.path.isdir("/proc/self/fd"), reason="requires /proc (Linux)"
)
class TestFlakyProxyFdHygiene:
    """The chaos proxy must not leak sockets across its lifecycle.

    Every proxied connection is a client/upstream socket *pair* plus
    two pump threads; a leak here compounds across the hundreds of
    connections a chaos drill churns through.  Counted the blunt way:
    ``/proc/self/fd`` before and after.
    """

    def _echo_upstream(self):
        """A minimal newline-echoing server; returns (addr, closer)."""
        listener = socket.create_server(("127.0.0.1", 0))
        closed = threading.Event()

        def handle(conn):
            with conn:
                try:
                    while data := conn.recv(65536):
                        conn.sendall(data)
                except OSError:
                    pass

        def accept_loop():
            while not closed.is_set():
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                threading.Thread(
                    target=handle, args=(conn,), daemon=True
                ).start()

        thread = threading.Thread(target=accept_loop, daemon=True)
        thread.start()

        def closer():
            closed.set()
            try:
                listener.shutdown(socket.SHUT_RDWR)  # wake accept()
            except OSError:
                pass
            listener.close()
            thread.join(timeout=5)

        return listener.getsockname()[:2], closer

    def _wait_for_baseline(self, baseline: int) -> int:
        # Pump and echo threads close their sockets asynchronously
        # after a link is killed, so give stragglers a bounded grace.
        for _ in range(500):
            count = _fd_count()
            if count <= baseline:
                return count
            time.sleep(0.01)
        return _fd_count()

    def test_connection_churn_releases_every_fd(self, tmp_path):
        upstream, close_upstream = self._echo_upstream()
        try:
            baseline = _fd_count()
            with FlakyProxy(upstream) as proxy:
                host, port = proxy.address
                for _ in range(5):
                    with socket.create_connection((host, port)) as conn:
                        conn.sendall(b"ping\n")
                        assert conn.recv(65536) == b"ping\n"
                assert proxy.stats()["connections"] == 5
            assert self._wait_for_baseline(baseline) == baseline
        finally:
            close_upstream()

    def test_partition_reject_and_kill_release_every_fd(self, tmp_path):
        upstream, close_upstream = self._echo_upstream()
        try:
            baseline = _fd_count()
            with FlakyProxy(upstream) as proxy:
                host, port = proxy.address
                # A live link cut by partition(): both sides must close.
                conn = socket.create_connection((host, port))
                conn.sendall(b"ping\n")
                assert conn.recv(65536) == b"ping\n"
                proxy.partition()
                # A connection rejected while partitioned: the accepted
                # socket must be closed immediately, not tracked.
                with socket.create_connection((host, port)) as rejected:
                    assert rejected.recv(65536) == b""
                conn.close()
                assert proxy.stats()["partition_rejects"] == 1
            assert self._wait_for_baseline(baseline) == baseline
        finally:
            close_upstream()

    def test_upstream_down_closes_client_socket(self, tmp_path):
        # The upstream vanishes between accept and connect: the proxy
        # must close the freshly-accepted client socket, not leak it.
        upstream, close_upstream = self._echo_upstream()
        close_upstream()  # dead on arrival
        baseline = _fd_count()
        with FlakyProxy(upstream) as proxy:
            host, port = proxy.address
            with socket.create_connection((host, port)) as conn:
                assert conn.recv(65536) == b""
        assert self._wait_for_baseline(baseline) == baseline


# ---------------------------------------------------------------------------
# coordinator lifecycle


class TestCoordinator:
    def test_resume_reuses_completed_boards(self, tmp_path):
        # Coordinator dies after one full board landed; a second
        # coordinator re-serves the same run directory, leases only
        # the unfinished board, and the report is byte-identical.
        reference = reference_report_bytes(SPEC, tmp_path)
        coordinator, _ = build_coordinator(SPEC, tmp_path)
        host, port = coordinator.address
        worker = FabricWorker(
            host, port, poll_interval=None, heartbeat=False
        )
        assert _run_single_board(worker) == [0]
        coordinator.close()

        clock = ManualClock()
        resumed = FabricCoordinator.resume(
            tmp_path / "fabric",
            clock=clock,
            prep=prepare_offline_cached(SPEC),
        )
        with resumed:
            drain(resumed, clock, lease_ttl=30.0)
            resumed.run_until_complete(timeout=60)
        assert resumed.run_dir.report_path.read_bytes() == reference
        # board 0 was *reused*, not re-leased: one lease covers the rest
        telemetry = json.loads(
            resumed.run_dir.telemetry_path.read_text()
        )
        assert telemetry["leases_issued"] == 1

    def test_finished_campaign_claims_report_done(self, tmp_path):
        coordinator, clock = build_coordinator(SMALL, tmp_path)
        with coordinator:
            drain(coordinator, clock)
            coordinator.run_until_complete(timeout=60)
            host, port = coordinator.address
            with FabricClient(host, port) as client:
                claim = client.request("claim", worker="late")
                assert claim["board"] is None and claim["done"] is True

    def test_empty_boards_complete_without_a_lease(self, tmp_path):
        # More boards than victims: the surplus boards get no jobs and
        # must complete immediately, exactly like the local executors.
        spec = CampaignSpec(boards=6, victims=3, seed=1)
        reference = reference_report_bytes(spec, tmp_path)
        coordinator, clock = build_coordinator(spec, tmp_path)
        with coordinator:
            status = coordinator.status()
            assert status["boards_complete"] == 3  # the empty ones
            drain(coordinator, clock)
            coordinator.run_until_complete(timeout=60)
        assert coordinator.run_dir.report_path.read_bytes() == reference


# ---------------------------------------------------------------------------
# self-healing transport: reconnect-and-replay through a flaky wire


def _dead_port() -> int:
    """A port nothing listens on (bound once, then released)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestResilientClient:
    def test_send_raw_after_close_is_a_protocol_error(self, coordinator):
        # The satellite pin: raw writes on a closed client must fail
        # loudly, not crash on a None socket or silently vanish.
        client = _client(coordinator)
        client.close()
        with pytest.raises(FabricProtocolError):
            client.send_raw(b'{"op": "status"}\n')

    def test_scripted_drop_forces_reconnect_and_replay(self, coordinator):
        script = ChaosScript(drop_after_requests=(2,))
        with FlakyProxy(coordinator.address, script=script) as proxy:
            host, port = proxy.address
            with ResilientFabricClient(
                host, port, policy=FAST_RETRY, sleep=no_sleep
            ) as client:
                client.connect()
                assert client.request("status")["done"] is False
                # Ordinal 2 is swallowed and the link cut: the client
                # must redial and replay the op, invisibly to us.
                assert client.request("status")["done"] is False
                assert client.stats() == {"reconnects": 1, "replays": 1}
            assert proxy.stats()["drops_injected"] == 1

    def test_torn_frame_heals_by_replay(self, coordinator):
        script = ChaosScript(tear_after_requests=(1,))
        with FlakyProxy(coordinator.address, script=script) as proxy:
            host, port = proxy.address
            with ResilientFabricClient(
                host, port, policy=FAST_RETRY, sleep=no_sleep
            ) as client:
                assert client.request("status")["boards"] == SMALL.boards
                assert client.stats()["replays"] == 1
            assert proxy.stats()["tears_injected"] == 1

    def test_stall_is_ridden_out_within_the_op_timeout(self, coordinator):
        script = ChaosScript(
            stall_after_requests=(1,), stall_seconds=0.05
        )
        with FlakyProxy(coordinator.address, script=script) as proxy:
            host, port = proxy.address
            with ResilientFabricClient(
                host, port, policy=FAST_RETRY, sleep=no_sleep
            ) as client:
                assert client.request("status")["done"] is False
                assert client.stats() == {"reconnects": 0, "replays": 0}
            assert proxy.stats()["stalls_injected"] == 1

    def test_partition_exhausts_the_budget_then_heals(self, coordinator):
        tight = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with FlakyProxy(coordinator.address) as proxy:
            host, port = proxy.address
            with ResilientFabricClient(
                host, port, policy=tight, sleep=no_sleep
            ) as client:
                assert client.request("status")["done"] is False
                proxy.partition()
                with pytest.raises(RetryExhaustedError) as excinfo:
                    client.request("status")
                assert isinstance(
                    excinfo.value.__cause__, FabricConnectionError
                )
                proxy.heal()
                # The same client object recovers once traffic flows.
                assert client.request("status")["done"] is False
            assert proxy.stats()["partition_rejects"] >= 1

    def test_exhaustion_against_a_dead_address_is_bounded(self):
        clock = ManualClock()
        client = ResilientFabricClient(
            "127.0.0.1",
            _dead_port(),
            policy=RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.0),
            clock=clock,
            sleep=clock.sleep,
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            client.connect()
        assert excinfo.value.attempts == 3
        assert clock() == 3.0  # the policy's exact schedule: 1.0 + 2.0


class TestWorkerSelfHealing:
    @pytest.mark.slow
    def test_worker_survives_drops_report_byte_identical(self, tmp_path):
        reference = reference_report_bytes(SMALL, tmp_path)
        coordinator, clock = build_coordinator(SMALL, tmp_path)
        script = ChaosScript(drop_after_requests=(2, 5, 9))
        try:
            with FlakyProxy(coordinator.address, script=script) as proxy:
                stats = drain_through_proxy(coordinator, clock, proxy)
                coordinator.run_until_complete(timeout=60)
                assert proxy.stats()["drops_injected"] == 3
        finally:
            coordinator.close()
        assert coordinator.run_dir.report_path.read_bytes() == reference
        assert sum(s.get("reconnects", 0) for s in stats) >= 3

    def test_budget_exhaustion_raises_the_documented_error(self):
        worker = FabricWorker(
            "127.0.0.1",
            _dead_port(),
            heartbeat=False,
            poll_interval=None,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay=0.0, jitter=0.0
            ),
            sleep=no_sleep,
        )
        with pytest.raises(RetryExhaustedError):
            worker.run()

    def test_cli_work_maps_exhaustion_to_exit_4(self, capsys):
        code = main(
            [
                "campaign",
                "work",
                f"127.0.0.1:{_dead_port()}",
                "--retry-attempts",
                "2",
                "--retry-base",
                "0",
                "--no-wait",
            ]
        )
        assert code == 4
        assert "RETRY BUDGET EXHAUSTED" in capsys.readouterr().err

    def test_heartbeat_failure_is_observed_by_the_claim_loop(self):
        # The satellite pin: a heartbeat that dies must abandon the
        # board *deliberately* (early StaleLeaseError), and a failure
        # flagged against an old lease must not poison a fresh one.
        worker = FabricWorker(
            "127.0.0.1", 9, heartbeat=False, poll_interval=None
        )
        with worker._lease_lock:
            worker._current_lease = "b0e1"

        class DeadClient:
            def request(self, op, **fields):
                worker._stop_heartbeat.set()  # one tick, then stop
                raise FabricConnectionError("wire gone")

        stats = {"heartbeat_failures": 0}
        worker._heartbeat_loop(DeadClient(), 0.0, stats)
        assert stats["heartbeat_failures"] == 1
        assert worker._heartbeat_failed.is_set()
        with pytest.raises(StaleLeaseError):
            worker._check_heartbeat("b0e1")
        worker._check_heartbeat("b0e2")  # fresh lease: no poison


# ---------------------------------------------------------------------------
# coordinator-restart survival


class TestCoordinatorRestart:
    def test_timeout_is_clean_and_the_run_stays_resumable(self, tmp_path):
        # The run_until_complete contract: a timeout raises, nothing
        # else happens — still serving, close() safe, resumable to a
        # byte-identical report.
        reference = reference_report_bytes(SMALL, tmp_path)
        coordinator, _ = build_coordinator(SMALL, tmp_path)
        with pytest.raises(FabricTimeoutError) as excinfo:
            coordinator.run_until_complete(timeout=0.05)
        assert "resumable" in str(excinfo.value)
        host, port = coordinator.address  # still serving
        with FabricClient(host, port) as client:
            assert client.request("status")["done"] is False
        coordinator.close()  # safe after a timeout

        clock = ManualClock()
        resumed = FabricCoordinator.resume(
            tmp_path / "fabric",
            clock=clock,
            prep=prepare_offline_cached(SMALL),
        )
        with resumed:
            drain(resumed, clock)
            resumed.run_until_complete(timeout=60)
        assert resumed.run_dir.report_path.read_bytes() == reference

    def test_restart_readmits_workers_under_new_epochs(self, tmp_path):
        # Kill a coordinator holding an outstanding lease; the resumed
        # one (same port) must fence the old token and never re-mint
        # its epoch — the leases.json watermark contract.
        reference = reference_report_bytes(SPEC, tmp_path)
        coordinator, _ = build_coordinator(SPEC, tmp_path)
        host, port = coordinator.address
        with FabricClient(host, port) as client:
            stale = client.request("claim", worker="doomed")
        assert (tmp_path / "fabric" / "leases.json").exists()

        resumed, clock = restart_coordinator(coordinator)
        assert resumed.address == (host, port)  # same door, new epoch
        with FabricClient(host, port) as client:
            fresh = client.request("claim", worker="reborn")
            assert fresh["board"] == stale["board"]
            old_epoch = int(stale["lease"].rpartition("e")[2])
            new_epoch = int(fresh["lease"].rpartition("e")[2])
            assert new_epoch > old_epoch
            with pytest.raises(StaleLeaseError):
                client.request("heartbeat", lease=stale["lease"])
        clock.advance(31.0)  # let the probe claim expire, then drain
        with resumed:
            drain(resumed, clock)
            resumed.run_until_complete(timeout=60)
        assert resumed.run_dir.report_path.read_bytes() == reference

    @pytest.mark.slow
    def test_acceptance_chaos_drill(self, tmp_path):
        # THE acceptance drill: a two-worker campaign through a flaky
        # proxy — at least three scripted connection drops and a stall
        # per worker — plus one coordinator kill-and-resume between
        # boards, ending byte-identical to the single-host report.
        reference = reference_report_bytes(SPEC, tmp_path)
        coordinator, clock = build_coordinator(SPEC, tmp_path)
        script = ChaosScript(
            drop_after_requests=(3, 6, 9),
            stall_after_requests=(5, 12),
            stall_seconds=0.05,
        )
        proxy = FlakyProxy(coordinator.address, script=script)
        live = coordinator
        try:
            with proxy:
                proxy_host, proxy_port = proxy.address
                # Phase 1: one worker grinds a board through the worst
                # of the chaos window (drops at ordinals 3/6/9, stall
                # at 5 — every redial's re-hello shifts the stream,
                # which is exactly the point).
                first = FabricWorker(
                    proxy_host,
                    proxy_port,
                    worker_id="chaos-first",
                    poll_interval=None,
                    heartbeat=False,
                    retry_policy=FAST_RETRY,
                    sleep=no_sleep,
                )
                assert _run_single_board(first) == [0]
                # Phase 2: kill the coordinator mid-campaign and
                # resume the same run directory on the same port.
                live, clock = restart_coordinator(coordinator, clock=clock)
                # Phase 3: two workers race the rest through whatever
                # chaos remains in the script.
                drain_through_proxy(live, clock, proxy, concurrent=2)
                live.run_until_complete(timeout=60)
                stats = proxy.stats()
                assert stats["drops_injected"] >= 3
                assert stats["stalls_injected"] >= 2
        finally:
            live.close()
        assert live.run_dir.report_path.read_bytes() == reference
        telemetry = json.loads(live.run_dir.telemetry_path.read_text())
        assert telemetry["victims_attacked"] == SPEC.victims


def _run_single_board(worker: FabricWorker) -> list[int]:
    """Drive *worker* through exactly one claimed board, then stop."""
    completed: list[int] = []
    original = worker._run_board

    def run_one(client, world, spool, board, token, stats):
        original(client, world, spool, board, token, stats)
        completed.append(board)
        raise _stop()

    worker._run_board = run_one
    try:
        worker.run()
    except _StopWorker:
        pass
    return completed


class _StopWorker(Exception):
    pass


def _stop() -> _StopWorker:
    return _StopWorker()
