"""Tests for the checkpointable, process-parallel campaign runtime.

The acceptance claims, pinned:

- a campaign interrupted mid-run and resumed yields a ``report.json``
  **byte-identical** to an uninterrupted run's, on both executors (and
  even when the resume uses a different executor than the interrupted
  run);
- the in-process and multiprocess executors produce identical
  canonical outcomes;
- every scraped dump lands in the content-addressed spool and no dump
  object survives the campaign in memory (the flat-memory property);
- the journal survives torn writes, and board-completion markers bound
  what resume may reuse.
"""

import gc
import json
import weakref

import pytest

from repro.attack.extraction import ScrapedDump
from repro.campaign import (
    CampaignRuntime,
    CampaignSpec,
    DumpSpool,
    RunDirectory,
    run_campaign,
)
from repro.campaign.runtime import (
    InProcessExecutor,
    MultiprocessExecutor,
    canonical_outcome,
    resolve_executor,
)
from repro.campaign.worker import VictimOutcome
from repro.errors import CampaignInterrupted

SPEC = CampaignSpec(boards=3, victims=9, seed=5)


def _canonical_json(report) -> str:
    """A plain run's report with the wall-clock fields normalized."""
    canonical = [canonical_outcome(o) for o in report.outcomes]
    return json.dumps(
        [json.loads(json.dumps(o.__dict__, sort_keys=True)) for o in canonical],
        sort_keys=True,
    )


class TestSpool:
    def _dump(self, data: bytes) -> ScrapedDump:
        return ScrapedDump(
            pid=1,
            heap_start=0,
            data=data,
            pages_read=1,
            pages_skipped=0,
            devmem_reads=1,
        )

    def test_round_trip(self, tmp_path):
        spool = DumpSpool(tmp_path / "spool")
        entry = spool.put(self._dump(b"leaked bytes"))
        assert spool.read(entry.sha256) == b"leaked bytes"
        assert entry.sha256 in spool
        assert not entry.deduplicated

    def test_concurrent_same_digest_puts_from_threads(self, tmp_path):
        """Board threads share one pid; racing on one digest must not
        crash either writer (the all-zero-residue case)."""
        import threading

        spool = DumpSpool(tmp_path / "spool")
        dump = self._dump(b"\x00" * 65536)
        errors: list[Exception] = []

        def hammer() -> None:
            try:
                for _ in range(50):
                    spool.put(dump)
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert spool.read(dump.sha256) == dump.data
        assert len(spool.digests()) == 1

    def test_content_addressing_dedupes(self, tmp_path):
        spool = DumpSpool(tmp_path / "spool")
        first = spool.put(self._dump(b"\x00" * 4096))
        second = spool.put(self._dump(b"\x00" * 4096))
        assert first.sha256 == second.sha256
        assert second.deduplicated
        assert len(spool.digests()) == 1
        assert spool.total_bytes() == 4096

    def test_digest_matches_dump_property(self, tmp_path):
        dump = self._dump(b"abc")
        assert DumpSpool(tmp_path).put(dump).sha256 == dump.sha256

    def test_missing_digest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DumpSpool(tmp_path).read("0" * 64)

    def test_manifest_round_trip(self, tmp_path):
        spool = DumpSpool(tmp_path)
        records = [{"job_id": 0, "sha256": "f" * 64, "nbytes": 12}]
        spool.write_manifest(records)
        assert spool.load_manifest() == records


class TestRunDirectory:
    def test_create_then_open_preserves_spec(self, tmp_path):
        RunDirectory.create(tmp_path / "run", SPEC)
        assert RunDirectory.open(tmp_path / "run").load_spec() == SPEC

    def test_create_refuses_existing_run(self, tmp_path):
        RunDirectory.create(tmp_path / "run", SPEC)
        with pytest.raises(ValueError, match="already holds a campaign"):
            RunDirectory.create(tmp_path / "run", SPEC)

    def test_open_refuses_non_run_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunDirectory.open(tmp_path / "nowhere")

    def _outcome(self, job_id: int, wave: int = 0) -> VictimOutcome:
        return VictimOutcome(
            job_id=job_id,
            board_index=0,
            board_name="ZCU104",
            model_name="resnet50_pt",
            tenant_index=0,
            launch_wave=wave,
            pid=800 + job_id,
            identified_model="resnet50_pt",
            pixel_match_rate=1.0,
            nbytes=4096,
            devmem_reads=1,
            pages_read=1,
            wall_seconds=0.0,
        )

    def test_journal_round_trip(self, tmp_path):
        run = RunDirectory.create(tmp_path / "run", SPEC)
        run.append_wave(0, 0, [self._outcome(0), self._outcome(1)])
        run.append_wave(0, 1, [self._outcome(2, wave=1)])
        run.mark_board_complete(0)
        state = run.load_journal()
        assert state.complete_boards == {0}
        assert state.journaled_outcomes == 3
        assert [o.job_id for o in state.reusable_outcomes()] == [0, 1, 2]

    def test_incomplete_board_not_reusable(self, tmp_path):
        run = RunDirectory.create(tmp_path / "run", SPEC)
        run.append_wave(1, 0, [self._outcome(4)])
        state = run.load_journal()
        assert state.complete_boards == set()
        assert state.reusable_outcomes() == []
        assert state.journaled_outcomes == 1

    def test_torn_trailing_write_is_ignored(self, tmp_path):
        run = RunDirectory.create(tmp_path / "run", SPEC)
        run.append_wave(0, 0, [self._outcome(0)])
        with open(run.journal_path, "a") as handle:
            handle.write('{"type": "wave", "board": 0, "wa')  # kill -9 here
        state = run.load_journal()
        assert state.journaled_outcomes == 1

    def test_append_after_torn_write_does_not_glue(self, tmp_path):
        """A resume appending onto a torn tail must not corrupt its record."""
        run = RunDirectory.create(tmp_path / "run", SPEC)
        run.append_wave(0, 0, [self._outcome(0)])
        with open(run.journal_path, "a") as handle:
            handle.write('{"type": "wave", "board": 1, "wa')  # kill -9 here
        run.append_wave(1, 0, [self._outcome(4)])
        run.mark_board_complete(1)
        state = run.load_journal()
        assert state.journaled_outcomes == 2
        assert state.complete_boards == {1}
        assert [o.job_id for o in state.reusable_outcomes()] == [4]

    def test_canonical_outcome_zeroes_only_wall_clock(self):
        noisy = self._outcome(0)
        noisy = type(noisy)(
            **{**noisy.__dict__, "wall_seconds": 1.5, "teardown_seconds": 0.2}
        )
        clean = canonical_outcome(noisy)
        assert clean.wall_seconds == 0.0
        assert clean.teardown_seconds == 0.0
        assert clean.pid == noisy.pid
        assert clean.nbytes == noisy.nbytes


class TestLeaseEpochWatermarks:
    """Edge cases of ``RunDirectory`` reading ``leases.json``.

    Epochs are fencing tokens, so the reader's contract is asymmetric:
    *absence* of information (no file, empty file) safely means "no
    epochs ever issued", but *unreadable* information must stop the
    resume — restarting epoch numbering could re-issue a token a
    partitioned worker still holds.
    """

    def _run(self, tmp_path):
        return RunDirectory.create(tmp_path / "run", SPEC)

    def test_missing_file_means_no_epochs(self, tmp_path):
        assert self._run(tmp_path).load_lease_epochs() == {}

    def test_empty_file_means_no_epochs(self, tmp_path):
        run = self._run(tmp_path)
        run.lease_epochs_path.write_text("")
        assert run.load_lease_epochs() == {}

    def test_whitespace_only_file_means_no_epochs(self, tmp_path):
        run = self._run(tmp_path)
        run.lease_epochs_path.write_text("\n  \n")
        assert run.load_lease_epochs() == {}

    def test_round_trip(self, tmp_path):
        run = self._run(tmp_path)
        run.save_lease_epochs({0: 3, 2: 7})
        assert run.load_lease_epochs() == {0: 3, 2: 7}

    def test_torn_final_line_refuses_resume(self, tmp_path):
        run = self._run(tmp_path)
        run.save_lease_epochs({0: 3, 1: 5})
        text = run.lease_epochs_path.read_text()
        # A non-atomic writer killed mid-write: valid prefix, torn tail.
        run.lease_epochs_path.write_text(text[: len(text) // 2])
        with pytest.raises(ValueError, match="corrupt lease-epoch"):
            run.load_lease_epochs()

    def test_non_object_payload_refuses_resume(self, tmp_path):
        run = self._run(tmp_path)
        run.lease_epochs_path.write_text('[1, 2, 3]\n')
        with pytest.raises(ValueError, match="corrupt lease-epoch"):
            run.load_lease_epochs()

    def test_non_numeric_epoch_refuses_resume(self, tmp_path):
        run = self._run(tmp_path)
        run.lease_epochs_path.write_text(
            '{"epochs": {"0": "three"}}\n'
        )
        with pytest.raises(ValueError, match="corrupt lease-epoch"):
            run.load_lease_epochs()

    def test_unknown_board_entries_are_preserved(self, tmp_path):
        # SPEC has 3 boards (0..2); board 99 is from an older, wider
        # spec.  The reader keeps it — the fabric only consults
        # watermarks for boards it actually leases.
        run = self._run(tmp_path)
        run.save_lease_epochs({0: 2, 99: 11})
        epochs = run.load_lease_epochs()
        assert epochs == {0: 2, 99: 11}


class TestExecutorEquivalence:
    def test_multiprocess_matches_inprocess(self):
        inproc = run_campaign(SPEC, executor="inprocess")
        multi = run_campaign(SPEC, executor="multiprocess", processes=2)
        assert _canonical_json(inproc) == _canonical_json(multi)

    def test_process_count_does_not_change_outcomes(self):
        one = run_campaign(SPEC, executor="multiprocess", processes=1)
        three = run_campaign(SPEC, executor="multiprocess", processes=3)
        assert _canonical_json(one) == _canonical_json(three)

    def test_resolve_auto_small_fleet_is_threads(self):
        chosen = resolve_executor(SPEC, "auto")
        assert isinstance(chosen, InProcessExecutor)

    def test_resolve_auto_large_fleet_is_processes(self):
        large = CampaignSpec(boards=8, victims=8)
        assert isinstance(resolve_executor(large, "auto"), MultiprocessExecutor)

    def test_teardown_hook_forces_threads_on_auto(self):
        large = CampaignSpec(boards=8, victims=8)
        chosen = resolve_executor(large, "auto", teardown_hook=lambda k: None)
        assert isinstance(chosen, InProcessExecutor)

    def test_teardown_hook_rejected_by_multiprocess(self):
        with pytest.raises(ValueError, match="in-process"):
            resolve_executor(
                SPEC, "multiprocess", teardown_hook=lambda k: None
            )

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor(SPEC, "distributed")

    def test_custom_database_ships_to_multiprocess_workers(self):
        """A hand-tuned database travels by value and changes nothing.

        Workers used to re-mine their own database from the shipped
        profiles (so a custom one was refused); now the mined token
        payload ships with the spec, and both executors must score
        against the *same* database — custom or not.
        """
        from repro.attack.identify import SignatureDatabase
        from repro.campaign import prepare_offline

        profiles, database = prepare_offline(SPEC)
        assert isinstance(database, SignatureDatabase)
        inproc = run_campaign(
            SPEC, profiles=profiles, database=database, executor="inprocess"
        )
        multi = run_campaign(
            SPEC,
            profiles=profiles,
            database=database,
            executor="multiprocess",
            processes=2,
        )
        assert _canonical_json(inproc) == _canonical_json(multi)

    def test_auto_with_custom_database_goes_multiprocess(self):
        """The documented prep-reuse pattern keeps working at any fleet
        size: 'auto' no longer needs an in-process fallback for a
        custom database, because the database ships by value."""
        from repro.campaign import prepare_offline
        from repro.campaign.runtime.executors import (
            MULTIPROCESS_AUTO_BOARDS,
        )

        spec = CampaignSpec(
            boards=MULTIPROCESS_AUTO_BOARDS,
            victims=MULTIPROCESS_AUTO_BOARDS,
            seed=2,
        )
        profiles, database = prepare_offline(spec)
        assert isinstance(
            resolve_executor(spec, "auto"), MultiprocessExecutor
        )
        report = run_campaign(spec, profiles=profiles, database=database)
        assert report.victims == spec.victims

    def test_silently_dying_workers_fail_fast(self, monkeypatch):
        """A worker killed before its shard loop must not hang the run."""
        import os as os_module

        from repro.campaign.runtime import executors
        from repro.campaign.runtime.executors import CampaignExecutionError

        monkeypatch.setattr(
            executors,
            "_worker_main",
            lambda *args: os_module._exit(1),
        )
        with pytest.raises(CampaignExecutionError, match="without"):
            run_campaign(SPEC, executor="multiprocess", processes=2)


class TestCheckpointResume:
    def _uninterrupted(self, tmp_path, **kwargs):
        return CampaignRuntime(
            SPEC, tmp_path / "full", **kwargs
        ).run()

    @pytest.mark.parametrize("executor", ["inprocess", "multiprocess"])
    def test_interrupt_then_resume_is_byte_identical(self, tmp_path, executor):
        full = self._uninterrupted(tmp_path, executor=executor, processes=2)
        with pytest.raises(CampaignInterrupted):
            CampaignRuntime(
                SPEC,
                tmp_path / "crashed",
                executor=executor,
                processes=2,
                interrupt_after=3,
            ).run()
        resumed = CampaignRuntime.resume(
            tmp_path / "crashed", executor=executor, processes=2
        ).run()
        assert resumed.to_json() == full.to_json()
        assert (tmp_path / "crashed" / "report.json").read_bytes() == (
            tmp_path / "full" / "report.json"
        ).read_bytes()

    def test_resume_across_executors(self, tmp_path):
        full = self._uninterrupted(tmp_path)
        with pytest.raises(CampaignInterrupted):
            CampaignRuntime(
                SPEC,
                tmp_path / "crashed",
                executor="multiprocess",
                processes=2,
                interrupt_after=2,
            ).run()
        resumed = CampaignRuntime.resume(
            tmp_path / "crashed", executor="inprocess"
        ).run()
        assert resumed.to_json() == full.to_json()

    def test_checkpointed_report_is_timing_free(self, tmp_path):
        report = self._uninterrupted(tmp_path)
        assert report.wall_seconds == 0.0
        assert all(o.wall_seconds == 0.0 for o in report.outcomes)
        assert all(o.teardown_seconds == 0.0 for o in report.outcomes)

    def test_checkpointed_matches_plain_spooled_run(self, tmp_path):
        checkpointed = self._uninterrupted(tmp_path)
        plain = run_campaign(SPEC, spool=DumpSpool(tmp_path / "spool"))
        assert _canonical_json(checkpointed) == _canonical_json(plain)

    def test_interrupt_preserves_journal_and_telemetry(self, tmp_path):
        with pytest.raises(CampaignInterrupted):
            CampaignRuntime(
                SPEC, tmp_path / "run", interrupt_after=1
            ).run()
        run = RunDirectory.open(tmp_path / "run")
        assert run.load_journal().journaled_outcomes >= 1
        telemetry = json.loads(run.telemetry_path.read_text())
        assert telemetry["complete"] is False
        assert not run.report_path.exists()

    def test_resume_reuses_complete_boards(self, tmp_path):
        with pytest.raises(CampaignInterrupted):
            CampaignRuntime(
                SPEC, tmp_path / "run", interrupt_after=6
            ).run()
        before = RunDirectory.open(tmp_path / "run").load_journal()
        CampaignRuntime.resume(tmp_path / "run").run()
        telemetry = json.loads(
            (tmp_path / "run" / "telemetry.json").read_text()
        )
        assert telemetry["complete"] is True
        assert telemetry["boards_reused"] == sorted(before.complete_boards)
        assert telemetry["outcomes_reused"] == len(
            before.reusable_outcomes()
        )

    def test_double_interrupt_does_not_duplicate_outcomes(self, tmp_path):
        """An interrupted resume re-journals a board's waves; the next
        resume must keep each job once, not once per attempt.

        Sequential boards (max_workers=1) make the choreography exact:
        attempt 1 leaves board 0 partially journaled (wave 0 only);
        attempt 2 re-journals board 0 fully — its wave-0 outcomes now
        appear twice — and crashes on board 1; attempt 3 reuses
        board 0 straight from the journal.
        """
        spec = CampaignSpec(boards=3, victims=9, seed=5, max_workers=1)
        full = CampaignRuntime(spec, tmp_path / "full").run()
        crash_dir = tmp_path / "crashed"
        with pytest.raises(CampaignInterrupted):
            CampaignRuntime(spec, crash_dir, interrupt_after=1).run()
        with pytest.raises(CampaignInterrupted):
            CampaignRuntime.resume(crash_dir, interrupt_after=4).run()
        journal = RunDirectory.open(crash_dir).load_journal()
        assert 0 in journal.complete_boards  # the scenario is armed
        resumed = CampaignRuntime.resume(crash_dir).run()
        assert resumed.victims == spec.victims
        assert resumed.to_json() == full.to_json()

    def test_resume_of_finished_run_reuses_everything(self, tmp_path):
        first = self._uninterrupted(tmp_path)
        again = CampaignRuntime.resume(tmp_path / "full").run()
        assert again.to_json() == first.to_json()
        telemetry = json.loads(
            (tmp_path / "full" / "telemetry.json").read_text()
        )
        assert telemetry["outcomes_journaled_this_run"] == 0


class TestSpoolIntegration:
    def test_every_successful_outcome_is_spooled(self, tmp_path):
        runtime = CampaignRuntime(SPEC, tmp_path / "run")
        report = runtime.run()
        spool = runtime.run_dir.spool
        for outcome in report.outcomes:
            if outcome.failed_step is None:
                assert outcome.dump_sha256 is not None
                data = spool.read(outcome.dump_sha256)
                assert len(data) == outcome.nbytes

    def test_manifest_maps_jobs_to_digests(self, tmp_path):
        runtime = CampaignRuntime(SPEC, tmp_path / "run")
        report = runtime.run()
        manifest = runtime.run_dir.spool.load_manifest()
        assert [record["job_id"] for record in manifest] == [
            o.job_id for o in report.outcomes if o.dump_sha256
        ]

    def test_no_dump_survives_the_campaign_in_memory(self, tmp_path):
        """The flat-memory claim: dumps are spooled and dropped."""
        residents: list[weakref.ref] = []
        original_put = DumpSpool.put

        def tracking_put(self, dump):
            residents.append(weakref.ref(dump))
            return original_put(self, dump)

        DumpSpool.put = tracking_put
        try:
            report = CampaignRuntime(SPEC, tmp_path / "run").run()
        finally:
            DumpSpool.put = original_put
        succeeded = [o for o in report.outcomes if o.failed_step is None]
        assert len(residents) == len(succeeded)
        del report
        gc.collect()
        alive = [ref for ref in residents if ref() is not None]
        assert not alive, f"{len(alive)} dumps still resident after the run"

    def test_unspooled_run_has_no_digests(self):
        report = run_campaign(SPEC)
        assert all(o.dump_sha256 is None for o in report.outcomes)


class TestPlainEngineStillWorks:
    def test_spool_kwarg_on_run_campaign(self, tmp_path):
        spool = DumpSpool(tmp_path / "spool")
        report = run_campaign(SPEC, spool=spool)
        assert len(spool.digests()) > 0
        assert all(
            o.dump_sha256 in spool
            for o in report.outcomes
            if o.failed_step is None
        )

    def test_plain_run_keeps_real_wall_clock(self):
        report = run_campaign(SPEC)
        assert report.wall_seconds > 0.0
