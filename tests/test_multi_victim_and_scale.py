"""Multi-victim boards and non-default input scales."""

import pytest

from repro.attack.pipeline import MemoryScrapingAttack
from repro.attack.polling import PidPoller
from repro.evaluation.scenarios import BoardSession, run_paper_attack
from repro.vitis.app import VictimApplication
from repro.vitis.image import Image


class TestMultipleVictims:
    def test_find_victims_lists_all_matches(self, shells):
        attacker_shell, victim_shell = shells
        app = VictimApplication(victim_shell, input_hw=32)
        first = app.launch("resnet50_pt", infer=False)
        second = app.launch("resnet50_pt", infer=False)
        sightings = PidPoller(attacker_shell).find_victims("resnet50_pt")
        assert [s.pid for s in sightings] == [first.pid, second.pid]

    def test_find_victims_empty_when_absent(self, shells):
        attacker_shell, _ = shells
        assert PidPoller(attacker_shell).find_victims("ghost") == []

    def test_two_concurrent_victims_attacked_in_turn(self):
        """Each victim's dump recovers its own image, not the other's."""
        session = BoardSession.boot(input_hw=32)
        profiles = session.profile(["resnet50_pt"])
        app = session.victim_application()
        image_a = Image.test_pattern(32, 32, seed=100)
        image_b = Image.test_pattern(32, 32, seed=200)
        victim_a = app.launch("resnet50_pt", image=image_a)
        victim_b = app.launch("resnet50_pt", image=image_b)

        # Attack A first (B still running), then B.
        attack_a = MemoryScrapingAttack(session.attacker_shell, profiles)
        report_a = attack_a.execute(
            "resnet50_pt", terminate_victim=victim_a.terminate
        )
        recovered_a = report_a.reconstruction.image
        assert recovered_a.pixel_match_rate(image_a) == 1.0
        assert recovered_a.pixel_match_rate(image_b) < 1.0

        attack_b = MemoryScrapingAttack(session.attacker_shell, profiles)
        report_b = attack_b.execute(
            "resnet50_pt", terminate_victim=victim_b.terminate
        )
        assert report_b.reconstruction.image.pixel_match_rate(image_b) == 1.0


class TestOtherInputScales:
    @pytest.mark.parametrize("input_hw", [16, 48, 64])
    def test_paper_attack_at_scale(self, input_hw):
        """The pipeline is size-agnostic; profiles carry the size."""
        session = BoardSession.boot(input_hw=input_hw)
        outcome = run_paper_attack(session)
        assert outcome.model_identified_correctly
        assert outcome.image_recovered_exactly

    def test_profiled_offset_grows_with_input(self):
        offsets = {}
        for input_hw in (16, 64):
            session = BoardSession.boot(input_hw=input_hw)
            profiles = session.profile(["resnet50_pt"])
            offsets[input_hw] = profiles.get("resnet50_pt").image_offset
        # The model blob itself is size-independent, so the image
        # offset moves only by allocator rounding — but the image
        # *extent* grows, and both dumps must carry it fully.
        assert offsets[16] > 0
        assert offsets[64] > 0

    def test_profiles_do_not_transfer_across_sizes(self):
        """A 16px profile must not silently misreconstruct a 64px victim."""
        from repro.errors import ReconstructionError
        from repro.attack.addressing import AddressHarvester
        from repro.attack.extraction import MemoryScraper

        small_session = BoardSession.boot(input_hw=16)
        small_profiles = small_session.profile(["resnet50_pt"])
        small_profile = small_profiles.get("resnet50_pt")

        big_session = BoardSession.boot(input_hw=64)
        victim = big_session.victim_application().launch("resnet50_pt")
        harvested = AddressHarvester(
            big_session.attacker_shell.procfs,
            caller=big_session.attacker_shell.user,
        ).harvest(victim.pid)
        victim.terminate()
        dump = MemoryScraper(
            big_session.attacker_shell.devmem_tool,
            big_session.attacker_shell.user,
        ).scrape(harvested)

        from repro.attack.reconstruct import ImageReconstructor

        result = ImageReconstructor().reconstruct(dump, small_profile)
        # The slice succeeds (the big dump is larger) but yields a
        # 16x16 crop of whatever sits at the stale offset — verifiably
        # NOT the victim's 64px input.
        assert result.image.width == 16
