"""Unit tests for attack step 3 — post-termination extraction."""

import pytest

from repro.attack.addressing import AddressHarvester
from repro.attack.config import AttackConfig
from repro.attack.extraction import MemoryScraper
from repro.errors import ExtractionError
from repro.evaluation.scenarios import BoardSession
from repro.mmu.paging import PAGE_SIZE
from repro.petalinux.kernel import KernelConfig
from repro.petalinux.sanitizer import SanitizePolicy
from repro.vitis.app import VictimApplication
from repro.vitis.image import Image

INPUT_HW = 32


def _harvest_and_kill(shells, image=None):
    attacker_shell, victim_shell = shells
    app = VictimApplication(victim_shell, input_hw=INPUT_HW)
    image = image or Image.test_pattern(INPUT_HW, INPUT_HW, seed=7)
    run = app.launch("resnet50_pt", image=image)
    harvester = AddressHarvester(attacker_shell.procfs, caller=attacker_shell.user)
    harvested = harvester.harvest(run.pid)
    ground_truth = run.process.address_space.read_virtual(
        harvested.heap_start, harvested.length
    )
    run.terminate()
    return attacker_shell, harvested, ground_truth, run


class TestScrape:
    def test_dump_matches_victim_heap_exactly(self, shells):
        attacker_shell, harvested, ground_truth, _ = _harvest_and_kill(shells)
        scraper = MemoryScraper(attacker_shell.devmem_tool, attacker_shell.user)
        dump = scraper.scrape(harvested)
        assert dump.data == ground_truth

    def test_word_reads_counted(self, shells):
        attacker_shell, harvested, _, _ = _harvest_and_kill(shells)
        scraper = MemoryScraper(attacker_shell.devmem_tool, attacker_shell.user)
        dump = scraper.scrape(harvested)
        assert dump.devmem_reads == dump.pages_read * (PAGE_SIZE // 4)

    def test_bulk_mode_same_bytes_fewer_calls(self, shells):
        attacker_shell, harvested, ground_truth, _ = _harvest_and_kill(shells)
        config = AttackConfig(bulk_reads=True)
        scraper = MemoryScraper(
            attacker_shell.devmem_tool, attacker_shell.user, config
        )
        dump = scraper.scrape(harvested)
        assert dump.data == ground_truth
        assert dump.devmem_reads == dump.pages_read

    def test_dump_offsets_map_back_to_heap_vas(self, shells):
        attacker_shell, harvested, _, _ = _harvest_and_kill(shells)
        scraper = MemoryScraper(attacker_shell.devmem_tool, attacker_shell.user)
        dump = scraper.scrape(harvested)
        assert dump.virtual_address_of(0) == harvested.heap_start
        assert dump.virtual_address_of(PAGE_SIZE) == harvested.heap_start + PAGE_SIZE

    def test_bad_dump_offset_rejected(self, shells):
        attacker_shell, harvested, _, _ = _harvest_and_kill(shells)
        scraper = MemoryScraper(attacker_shell.devmem_tool, attacker_shell.user)
        dump = scraper.scrape(harvested)
        with pytest.raises(ValueError):
            dump.virtual_address_of(dump.nbytes)

    def test_spot_check_reads_one_word(self, shells):
        attacker_shell, harvested, ground_truth, _ = _harvest_and_kill(shells)
        scraper = MemoryScraper(attacker_shell.devmem_tool, attacker_shell.user)
        word = scraper.spot_check(harvested, harvested.heap_start)
        assert word == int.from_bytes(ground_truth[:4], "little")


class TestScrapeUnderDefenses:
    def test_zero_on_free_yields_zeroed_dump(self):
        session = BoardSession.boot(
            config=KernelConfig(sanitize_policy=SanitizePolicy.ZERO_ON_FREE),
            input_hw=INPUT_HW,
        )
        run = session.victim_application().launch("resnet50_pt")
        harvester = AddressHarvester(
            session.attacker_shell.procfs, caller=session.attacker_shell.user
        )
        harvested = harvester.harvest(run.pid)
        run.terminate()
        scraper = MemoryScraper(
            session.attacker_shell.devmem_tool, session.attacker_shell.user
        )
        dump = scraper.scrape(harvested)
        assert dump.data == b"\x00" * dump.nbytes

    def test_strict_devmem_raises_extraction_error(self):
        session = BoardSession.boot(
            config=KernelConfig(devmem_unrestricted=False), input_hw=INPUT_HW
        )
        run = session.victim_application().launch("resnet50_pt")
        harvester = AddressHarvester(
            session.attacker_shell.procfs, caller=session.attacker_shell.user
        )
        harvested = harvester.harvest(run.pid)
        run.terminate()
        scraper = MemoryScraper(
            session.attacker_shell.devmem_tool, session.attacker_shell.user
        )
        with pytest.raises(ExtractionError):
            scraper.scrape(harvested)

    def test_scrub_pool_window_of_vulnerability(self):
        """Scraping inside the scrub window still recovers data."""
        session = BoardSession.boot(
            config=KernelConfig(
                sanitize_policy=SanitizePolicy.SCRUB_POOL,
                scrub_rate_per_tick=1,
            ),
            input_hw=INPUT_HW,
        )
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=7)
        run = session.victim_application().launch("resnet50_pt", image=secret)
        harvester = AddressHarvester(
            session.attacker_shell.procfs, caller=session.attacker_shell.user
        )
        harvested = harvester.harvest(run.pid)
        run.terminate()
        # Scrape immediately (no ticks): most pages still dirty.
        scraper = MemoryScraper(
            session.attacker_shell.devmem_tool, session.attacker_shell.user
        )
        immediate = scraper.scrape(harvested)
        assert immediate.data.count(0) < immediate.nbytes
        # Drain the scrubber: now the same scrape comes back clean.
        session.kernel.sanitizer.drain()
        later = scraper.scrape(harvested)
        assert later.data == b"\x00" * later.nbytes
