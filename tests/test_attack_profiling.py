"""Unit tests for the offline profiler and profile store."""

import pytest

from repro.attack.profiling import ModelProfile, OfflineProfiler, ProfileStore
from repro.errors import ProfilingError
from repro.evaluation.scenarios import BoardSession
from repro.petalinux.kernel import KernelConfig
from repro.petalinux.sanitizer import SanitizePolicy

INPUT_HW = 32


class TestProfileModel:
    def test_finds_marker_offset(self, shells):
        attacker_shell, _ = shells
        profiler = OfflineProfiler(attacker_shell, input_hw=INPUT_HW)
        profile = profiler.profile_model("resnet50_pt")
        assert profile.model_name == "resnet50_pt"
        assert profile.image_offset > 0
        assert profile.image_nbytes == INPUT_HW * INPUT_HW * 3
        assert profile.heap_size > profile.image_offset

    def test_offset_matches_runner_ground_truth(self, shells):
        attacker_shell, victim_shell = shells
        from repro.vitis.app import VictimApplication

        profiler = OfflineProfiler(attacker_shell, input_hw=INPUT_HW)
        profile = profiler.profile_model("resnet50_pt")
        run = VictimApplication(victim_shell, input_hw=INPUT_HW).launch(
            "resnet50_pt"
        )
        assert profile.image_offset == run.runner.input_heap_offset

    def test_profile_transfers_across_boards(self):
        """The determinism claim: profile on board A, attack board B."""
        first = BoardSession.boot(input_hw=INPUT_HW)
        second = BoardSession.boot(input_hw=INPUT_HW)
        profile_a = OfflineProfiler(
            first.attacker_shell, input_hw=INPUT_HW
        ).profile_model("resnet50_pt")
        profile_b = OfflineProfiler(
            second.attacker_shell, input_hw=INPUT_HW
        ).profile_model("resnet50_pt")
        assert profile_a.image_offset == profile_b.image_offset

    def test_strings_include_model_tokens(self, shells):
        attacker_shell, _ = shells
        profiler = OfflineProfiler(attacker_shell, input_hw=INPUT_HW)
        profile = profiler.profile_model("resnet50_pt")
        assert any("resnet50" in text for text in profile.strings)

    def test_hexdump_row_property(self):
        profile = ModelProfile(
            model_name="m", image_offset=646768 * 16,
            image_height=224, image_width=224, heap_size=2**24,
        )
        assert profile.hexdump_row == 646768

    def test_profiling_fails_on_sanitizing_board(self):
        session = BoardSession.boot(
            config=KernelConfig(sanitize_policy=SanitizePolicy.ZERO_ON_FREE),
            input_hw=INPUT_HW,
        )
        profiler = OfflineProfiler(session.attacker_shell, input_hw=INPUT_HW)
        with pytest.raises(ProfilingError):
            profiler.profile_model("resnet50_pt")

    def test_profile_library_covers_all_requested(self, shells):
        attacker_shell, _ = shells
        profiler = OfflineProfiler(attacker_shell, input_hw=INPUT_HW)
        store = profiler.profile_library(["resnet50_pt", "squeezenet_pt"])
        assert store.model_names() == ["resnet50_pt", "squeezenet_pt"]

    def test_profiler_cleans_up_its_own_processes(self, shells):
        attacker_shell, _ = shells
        profiler = OfflineProfiler(attacker_shell, input_hw=INPUT_HW)
        profiler.profile_model("resnet50_pt")
        commands = [p.command for p in attacker_shell.kernel.processes()]
        assert not any("resnet50_pt" in command for command in commands)


class TestProfileStore:
    def _store(self) -> ProfileStore:
        store = ProfileStore()
        store.add(
            ModelProfile(
                model_name="resnet50_pt", image_offset=0x1000,
                image_height=32, image_width=32, heap_size=0x10000,
                strings=frozenset({"resnet50_pt", "shared"}),
            )
        )
        store.add(
            ModelProfile(
                model_name="squeezenet_pt", image_offset=0x800,
                image_height=32, image_width=32, heap_size=0x8000,
                strings=frozenset({"squeezenet_pt", "shared"}),
            )
        )
        return store

    def test_contains_and_get(self):
        store = self._store()
        assert "resnet50_pt" in store
        assert "ghost" not in store
        assert store.get("resnet50_pt").image_offset == 0x1000

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            self._store().get("ghost")

    def test_json_roundtrip(self):
        store = self._store()
        rebuilt = ProfileStore.from_json(store.to_json())
        assert rebuilt.model_names() == store.model_names()
        for name in store.model_names():
            original = store.get(name)
            copy = rebuilt.get(name)
            assert copy.image_offset == original.image_offset
            assert copy.strings == original.strings

    def test_add_replaces(self):
        store = self._store()
        store.add(
            ModelProfile(
                model_name="resnet50_pt", image_offset=0x2000,
                image_height=32, image_width=32, heap_size=0x10000,
            )
        )
        assert store.get("resnet50_pt").image_offset == 0x2000
        assert len(store.profiles()) == 2
