"""Zero-copy dump pipeline: backing equivalence and buffer lifecycle.

The acceptance claims, pinned:

- every analysis path (region carving, nonzero counting, signature
  matching, entropy/printable scoring) produces **identical results**
  whether a dump is backed by ``bytes``, ``bytearray``, or an mmap of
  a spool object — including the empty, all-zero, unaligned-tail, and
  multi-page-boundary edges;
- :class:`~repro.campaign.runtime.spool.MappedDump` has an explicit
  lifecycle: the file descriptor is provably released on close (and on
  garbage collection), a closed handle raises
  :class:`~repro.errors.SpoolClosedError` instead of touching a stale
  mapping, and closing under a live buffer export raises
  ``BufferError`` rather than invalidating the export;
- pooled (coalesced + :class:`~repro.utils.buffers.BufferPool`) and
  unpooled extraction scrape byte-identical dumps, and a released
  pooled dump can never be read again;
- the multiprocess executor's worker pool persists across runs — the
  amortization the campaign benchmark's small-fleet speedup rests on.
"""

import gc
import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.analysis.scan import as_uint8, nonzero_count
from repro.attack.addressing import AddressHarvester
from repro.attack.carving import (
    DumpCartographer,
    printable_fraction,
    shannon_entropy,
)
from repro.attack.config import AttackConfig
from repro.attack.extraction import MemoryScraper, ScrapedDump
from repro.attack.identify import ModelSignature, SignatureDatabase
from repro.campaign import CampaignSpec, DumpSpool, prepare_offline
from repro.campaign.runtime import (
    MappedDump,
    MultiprocessExecutor,
    canonical_outcome,
)
from repro.errors import ExtractionError, SpoolClosedError
from repro.mmu.paging import PAGE_SIZE
from repro.utils.buffers import BufferPool

TOKEN = b"/usr/share/vitis_ai_library/models/resnet50_pt\x00"


def _payloads() -> dict[str, bytes]:
    """The edge-case corpus every backing must agree on."""
    rng = np.random.default_rng(20240315)
    return {
        "empty": b"",
        "all_zero": bytes(PAGE_SIZE),
        "unaligned_tail": rng.integers(
            0, 256, size=777, dtype=np.uint8
        ).tobytes(),
        "page_boundary": (
            bytes(512)
            + TOKEN * 8
            + rng.integers(
                0, 256, size=2 * PAGE_SIZE + 333, dtype=np.uint8
            ).tobytes()
        ),
        "composite": b"".join(
            [
                bytes(1024),
                rng.integers(-10, 11, size=2048, dtype=np.int8).tobytes(),
                TOKEN * 16,
                rng.integers(0, 256, size=1536, dtype=np.uint8).tobytes(),
                b"\xff" * 512,
                rng.integers(0, 256, size=333, dtype=np.uint8).tobytes(),
            ]
        ),
    }


PAYLOADS = _payloads()


def _dump(data) -> ScrapedDump:
    return ScrapedDump(
        pid=871,
        heap_start=0,
        data=data,
        pages_read=1,
        pages_skipped=0,
        devmem_reads=1,
    )


def _database() -> SignatureDatabase:
    return SignatureDatabase(
        [
            ModelSignature(
                "resnet50_pt",
                frozenset({"resnet50_pt", "vitis_ai_library"}),
            ),
            ModelSignature(
                "squeezenet_pt", frozenset({"squeezenet_pt"})
            ),
        ]
    )


class TestBackingEquivalence:
    """bytes, bytearray, and mmap backings must analyze identically."""

    @pytest.mark.parametrize("name", sorted(PAYLOADS))
    def test_all_backings_agree(self, name, tmp_path):
        payload = PAYLOADS[name]
        spool = DumpSpool(tmp_path / "spool")
        entry = spool.put(_dump(payload))
        cartographer = DumpCartographer(window=256)
        database = _database()
        with spool.open(entry.sha256) as mapped:
            backings = {
                "bytes": payload,
                "bytearray": bytearray(payload),
                "mmap": mapped.data,
            }
            reference = {
                "regions": cartographer.map_dump(payload),
                "nonzero": nonzero_count(payload),
                "matches": database.match(payload),
                "entropy": shannon_entropy(payload),
                "printable": printable_fraction(payload),
            }
            for backing, data in backings.items():
                assert cartographer.map_dump(data) == reference["regions"], backing
                assert nonzero_count(data) == reference["nonzero"], backing
                assert database.match(data) == reference["matches"], backing
                assert shannon_entropy(data) == reference["entropy"], backing
                assert (
                    printable_fraction(data) == reference["printable"]
                ), backing

    @pytest.mark.parametrize("name", sorted(PAYLOADS))
    def test_mapped_dump_rehydrates_byte_identical(self, name, tmp_path):
        payload = PAYLOADS[name]
        spool = DumpSpool(tmp_path / "spool")
        entry = spool.put(_dump(payload))
        with spool.open(entry.sha256) as mapped:
            dump = mapped.to_dump(pid=871)
            assert dump.nbytes == len(payload)
            assert bytes(dump.data) == payload
            assert dump.sha256 == entry.sha256

    def test_token_match_straddling_a_page_boundary(self, tmp_path):
        # A signature token split across the mmap's page boundary must
        # still be found — the scan must treat the map as one buffer.
        payload = bytes(PAGE_SIZE - len(TOKEN) // 2) + TOKEN + bytes(64)
        spool = DumpSpool(tmp_path / "spool")
        entry = spool.put(_dump(payload))
        with spool.open(entry.sha256) as mapped:
            scores = _database().match(mapped.data)
        score, matched = scores["resnet50_pt"]
        assert score > 0
        assert "resnet50_pt" in matched


class TestMappedDumpLifecycle:
    def _spooled(self, tmp_path, payload=b"residue" * 1024):
        spool = DumpSpool(tmp_path / "spool")
        entry = spool.put(_dump(payload))
        return spool, entry.sha256, payload

    def test_open_is_zero_copy_for_nonempty_objects(self, tmp_path):
        import mmap as mmap_module

        spool, digest, payload = self._spooled(tmp_path)
        with spool.open(digest) as mapped:
            assert isinstance(mapped, MappedDump)
            assert isinstance(mapped.data, mmap_module.mmap)
            assert bytes(mapped.data) == payload
            assert mapped.nbytes == len(payload)
            assert mapped.sha256 == digest

    def test_empty_object_falls_back_to_bytes(self, tmp_path):
        spool, digest, _ = self._spooled(tmp_path, payload=b"")
        mapped = spool.open(digest)
        assert mapped.data == b""
        assert mapped.nbytes == 0
        mapped.close()
        assert mapped.closed

    def test_closed_handle_raises_clearly(self, tmp_path):
        spool, digest, _ = self._spooled(tmp_path)
        mapped = spool.open(digest)
        mapped.close()
        with pytest.raises(SpoolClosedError, match="was closed"):
            mapped.data
        # Size survives close; re-opening by digest recovers the bytes.
        assert mapped.nbytes > 0
        with spool.open(digest) as reopened:
            assert bytes(reopened.data)[:7] == b"residue"

    def test_close_is_idempotent(self, tmp_path):
        spool, digest, _ = self._spooled(tmp_path)
        mapped = spool.open(digest)
        mapped.close()
        mapped.close()
        assert mapped.closed

    def test_unknown_digest_raises_file_not_found(self, tmp_path):
        spool = DumpSpool(tmp_path / "spool")
        with pytest.raises(FileNotFoundError, match="no spooled object"):
            spool.open("0" * 64)

    def test_close_releases_the_file_descriptor(self, tmp_path):
        spool, digest, _ = self._spooled(tmp_path)
        baseline = len(os.listdir("/proc/self/fd"))
        mapped = spool.open(digest)
        assert len(os.listdir("/proc/self/fd")) > baseline
        mapped.close()
        assert len(os.listdir("/proc/self/fd")) == baseline

    def test_collection_releases_the_file_descriptor(self, tmp_path):
        # __del__ is the last-resort cleanup; dropping the handle must
        # not leak the fd even when close() was never called.
        spool, digest, _ = self._spooled(tmp_path)
        baseline = len(os.listdir("/proc/self/fd"))
        mapped = spool.open(digest)
        del mapped
        gc.collect()
        assert len(os.listdir("/proc/self/fd")) == baseline

    def test_close_under_live_export_raises_buffer_error(self, tmp_path):
        spool, digest, _ = self._spooled(tmp_path)
        mapped = spool.open(digest)
        exported = as_uint8(mapped.data)
        with pytest.raises(BufferError):
            mapped.close()
        # The export stayed valid; dropping it unblocks the close.
        assert int(exported[0]) == ord("r")
        del exported
        mapped.close()
        assert mapped.closed

    def test_handle_is_shareable_across_thread_boundaries(self, tmp_path):
        spool, digest, payload = self._spooled(
            tmp_path, payload=PAYLOADS["composite"]
        )
        cartographer = DumpCartographer(window=256)
        expected = (
            nonzero_count(payload),
            len(cartographer.map_dump(payload)),
        )
        with spool.open(digest) as mapped:
            def scan(_):
                return (
                    nonzero_count(mapped.data),
                    len(cartographer.map_dump(mapped.data)),
                )

            with ThreadPoolExecutor(max_workers=4) as pool:
                results = list(pool.map(scan, range(8)))
        assert results == [expected] * 8

    def test_second_spool_instance_rehydrates_same_object(self, tmp_path):
        # What a multiprocess worker does: a fresh DumpSpool over the
        # same root, open by digest, scan zero-copy.
        spool, digest, payload = self._spooled(tmp_path)
        worker_view = DumpSpool(spool.root)
        with worker_view.open(digest) as mapped:
            assert bytes(mapped.data) == payload


class TestPooledExtraction:
    INPUT_HW = 32

    def _harvest_and_kill(self, shells):
        attacker_shell, victim_shell = shells
        from repro.vitis.app import VictimApplication

        app = VictimApplication(victim_shell, input_hw=self.INPUT_HW)
        run = app.launch("resnet50_pt")
        harvester = AddressHarvester(
            attacker_shell.procfs, caller=attacker_shell.user
        )
        harvested = harvester.harvest(run.pid)
        run.terminate()
        return attacker_shell, harvested

    def test_pooled_scrape_matches_unpooled_and_recycles(self, shells):
        attacker_shell, harvested = self._harvest_and_kill(shells)
        reference = MemoryScraper(
            attacker_shell.devmem_tool,
            attacker_shell.user,
            AttackConfig(bulk_reads=True),
        ).scrape(harvested)
        pool = BufferPool()
        pooled_scraper = MemoryScraper(
            attacker_shell.devmem_tool,
            attacker_shell.user,
            AttackConfig(coalesce_reads=True),
            buffer_pool=pool,
        )
        first = pooled_scraper.scrape(harvested)
        assert bytes(first.data) == reference.data
        assert pool.allocations == 1
        first.release()
        # The next victim of the same heap size reuses the buffer.
        second = pooled_scraper.scrape(harvested)
        assert bytes(second.data) == reference.data
        assert pool.reuses == 1
        assert pool.allocations == 1

    def test_released_dump_refuses_every_access(self, shells):
        attacker_shell, harvested = self._harvest_and_kill(shells)
        pool = BufferPool()
        dump = MemoryScraper(
            attacker_shell.devmem_tool,
            attacker_shell.user,
            AttackConfig(coalesce_reads=True),
            buffer_pool=pool,
        ).scrape(harvested)
        digest = dump.sha256  # cached before release, by contract
        dump.release()
        assert dump.released
        assert dump.sha256 == digest
        with pytest.raises(ExtractionError, match="released"):
            dump.nbytes
        with pytest.raises(ExtractionError, match="released"):
            bytes(dump.data)
        dump.release()  # idempotent
        assert pool.free_buffers == 1

    def test_release_without_prior_hash_cannot_hash(self, shells):
        attacker_shell, harvested = self._harvest_and_kill(shells)
        dump = MemoryScraper(
            attacker_shell.devmem_tool,
            attacker_shell.user,
            AttackConfig(coalesce_reads=True),
            buffer_pool=BufferPool(),
        ).scrape(harvested)
        dump.release()
        with pytest.raises(ExtractionError, match="released"):
            dump.sha256


class TestBufferPool:
    def test_acquire_release_reuses_by_size(self):
        pool = BufferPool()
        buffer = pool.acquire(4096)
        pool.release(buffer)
        assert pool.acquire(4096) is buffer
        assert (pool.allocations, pool.reuses) == (1, 1)

    def test_different_sizes_never_share(self):
        pool = BufferPool()
        pool.release(pool.acquire(100))
        assert len(pool.acquire(200)) == 200
        assert pool.reuses == 0

    def test_per_size_bound_caps_hoarding(self):
        pool = BufferPool(max_buffers_per_size=2)
        buffers = [bytearray(64) for _ in range(5)]
        for buffer in buffers:
            pool.release(buffer)
        assert pool.free_buffers == 2

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="max_buffers_per_size"):
            BufferPool(max_buffers_per_size=0)
        with pytest.raises(ValueError, match="nbytes"):
            BufferPool().acquire(-1)


class TestPersistentWorkerPool:
    """The multiprocess executor keeps its workers across runs."""

    def _run(self, executor, spec, profiles, database, spool):
        outcomes = []
        executor.run(
            spec,
            range(spec.boards),
            profiles,
            database,
            spool=spool,
            on_wave=lambda board, wave, batch: outcomes.extend(batch),
            on_board_complete=lambda board: None,
        )
        return sorted(outcomes, key=lambda outcome: outcome.job_id)

    def test_workers_survive_across_runs_and_close_stops_them(
        self, tmp_path
    ):
        spec = CampaignSpec(boards=2, victims=4, seed=5)
        profiles, database = prepare_offline(spec)
        with MultiprocessExecutor(processes=2) as executor:
            first = self._run(
                executor, spec, profiles, database,
                DumpSpool(tmp_path / "first"),
            )
            workers = list(executor._workers)
            pids = sorted(worker.pid for worker in workers)
            second = self._run(
                executor, spec, profiles, database,
                DumpSpool(tmp_path / "second"),
            )
            # Same worker processes served both runs — no re-fork.
            assert sorted(w.pid for w in executor._workers) == pids
            assert [canonical_outcome(o) for o in first] == [
                canonical_outcome(o) for o in second
            ]
        assert executor._workers == []
        assert not any(worker.is_alive() for worker in workers)
