"""Tests for the pagemap-free attack variants."""

import pytest

from repro.attack.identify import SignatureDatabase
from repro.attack.polling import PidPoller
from repro.attack.variants import (
    FullScanAttack,
    ProfiledPhysicalAttack,
    profile_physical_layout,
)
from repro.errors import ExtractionError
from repro.evaluation.scenarios import BoardSession
from repro.petalinux.aslr import LayoutRandomization
from repro.petalinux.kernel import KernelConfig
from repro.petalinux.sanitizer import SanitizePolicy
from repro.vitis.image import Image

INPUT_HW = 32


def _reference_knowledge():
    """Profile layout + signatures on a board the adversary controls."""
    reference = BoardSession.boot(input_hw=INPUT_HW)
    profiles = reference.profile(["resnet50_pt", "squeezenet_pt"])
    database = SignatureDatabase.from_profiles(profiles)
    # Physical layout must come from a pristine boot (same state the
    # target board will be in when the victim launches).
    pristine = BoardSession.boot(input_hw=INPUT_HW)
    layout = profile_physical_layout(
        pristine.attacker_shell, "resnet50_pt", input_hw=INPUT_HW
    )
    return profiles, database, layout


@pytest.fixture(scope="module")
def knowledge():
    return _reference_knowledge()


def _run_victim(session, image):
    run = session.victim_application().launch("resnet50_pt", image=image)
    run.terminate()
    PidPoller(session.attacker_shell).wait_for_termination(run.pid)


class TestProfiledPhysicalAttack:
    def test_recovers_image_without_pagemap(self, knowledge):
        _, database, layout = knowledge
        target = BoardSession.boot(input_hw=INPUT_HW)
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=13)
        _run_victim(target, secret)
        attack = ProfiledPhysicalAttack(
            target.attacker_shell, layout, database
        )
        outcome = attack.run()
        assert outcome.leaked
        assert outcome.identification.best_model == "resnet50_pt"
        assert outcome.image.pixel_match_rate(secret) == 1.0

    def test_works_under_pagemap_lockdown(self, knowledge):
        """The defense that kills the paper attack does not kill this."""
        _, database, layout = knowledge
        target = BoardSession.boot(
            config=KernelConfig(
                pagemap_world_readable=False, procfs_world_readable=False
            ),
            input_hw=INPUT_HW,
        )
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=13)
        _run_victim(target, secret)
        outcome = ProfiledPhysicalAttack(
            target.attacker_shell, layout, database
        ).run()
        assert outcome.leaked
        assert outcome.image.pixel_match_rate(secret) == 1.0

    def test_defeated_by_physical_aslr(self, knowledge):
        _, database, layout = knowledge
        target = BoardSession.boot(
            config=KernelConfig(
                randomization=LayoutRandomization(physical=True, seed=99)
            ),
            input_hw=INPUT_HW,
        )
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=13)
        _run_victim(target, secret)
        outcome = ProfiledPhysicalAttack(
            target.attacker_shell, layout, database
        ).run()
        # The profiled addresses now point at unrelated (mostly
        # untouched) frames: no model strings, no attribution.
        assert outcome.identification is None
        assert outcome.image is None
        assert not outcome.leaked

    def test_defeated_by_zero_on_free(self, knowledge):
        _, database, layout = knowledge
        target = BoardSession.boot(
            config=KernelConfig(sanitize_policy=SanitizePolicy.ZERO_ON_FREE),
            input_hw=INPUT_HW,
        )
        _run_victim(target, Image.test_pattern(INPUT_HW, INPUT_HW))
        outcome = ProfiledPhysicalAttack(
            target.attacker_shell, layout, database
        ).run()
        assert not outcome.leaked

    def test_defeated_by_strict_devmem(self, knowledge):
        _, database, layout = knowledge
        target = BoardSession.boot(
            config=KernelConfig(devmem_unrestricted=False), input_hw=INPUT_HW
        )
        _run_victim(target, Image.test_pattern(INPUT_HW, INPUT_HW))
        with pytest.raises(ExtractionError):
            ProfiledPhysicalAttack(
                target.attacker_shell, layout, database
            ).run()


class TestFullScanAttack:
    def test_identifies_model_with_no_procfs(self, knowledge):
        profiles, database, _ = knowledge
        target = BoardSession.boot(
            config=KernelConfig(
                pagemap_world_readable=False, procfs_world_readable=False
            ),
            input_hw=INPUT_HW,
        )
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=13).corrupted(0.2)
        _run_victim(target, secret)
        attack = FullScanAttack(target.attacker_shell, database, profiles)
        outcome = attack.run()
        assert outcome.identification.best_model == "resnet50_pt"

    def test_recovers_marker_corrupted_image(self, knowledge):
        profiles, database, _ = knowledge
        target = BoardSession.boot(input_hw=INPUT_HW)
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=13).corrupted(0.2)
        _run_victim(target, secret)
        outcome = FullScanAttack(
            target.attacker_shell, database, profiles
        ).run()
        assert outcome.image is not None
        assert outcome.image.pixel_match_rate(secret) == 1.0

    def test_uncorrupted_image_not_recovered_by_scan(self, knowledge):
        """Honest capability limit: the sweep needs the marker."""
        profiles, database, _ = knowledge
        target = BoardSession.boot(input_hw=INPUT_HW)
        _run_victim(target, Image.test_pattern(INPUT_HW, INPUT_HW, seed=13))
        outcome = FullScanAttack(
            target.attacker_shell, database, profiles
        ).run()
        assert outcome.identification is not None
        assert outcome.image is None

    def test_survives_physical_aslr(self, knowledge):
        """Scanning doesn't care where the pages are."""
        profiles, database, _ = knowledge
        target = BoardSession.boot(
            config=KernelConfig(
                randomization=LayoutRandomization(physical=True, seed=99)
            ),
            input_hw=INPUT_HW,
        )
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=13).corrupted(0.2)
        _run_victim(target, secret)
        # Physical ASLR scatters frames across the whole 512 MiB user
        # pool, so sweep all of it (windowed, early-stopping).
        scan_length = 512 * 1024 * 1024
        outcome = FullScanAttack(
            target.attacker_shell, database, profiles,
            scan_length=scan_length, window=16 * 1024 * 1024,
        ).run()
        assert outcome.identification is not None
        assert outcome.identification.best_model == "resnet50_pt"

    def test_defeated_only_by_sanitization(self, knowledge):
        profiles, database, _ = knowledge
        target = BoardSession.boot(
            config=KernelConfig(sanitize_policy=SanitizePolicy.ZERO_ON_FREE),
            input_hw=INPUT_HW,
        )
        _run_victim(target, Image.test_pattern(INPUT_HW, INPUT_HW).corrupted(0.2))
        outcome = FullScanAttack(
            target.attacker_shell, database, profiles
        ).run()
        assert not outcome.leaked

    def test_bad_scan_length_rejected(self, knowledge):
        profiles, database, _ = knowledge
        session = BoardSession.boot(input_hw=INPUT_HW)
        with pytest.raises(ValueError):
            FullScanAttack(
                session.attacker_shell, database, profiles, scan_length=100
            )
