"""Unit and integration tests for the end-to-end attack pipeline."""

import pytest

from repro.attack.config import AttackConfig
from repro.attack.pipeline import AttackPhase, MemoryScrapingAttack
from repro.attack.profiling import OfflineProfiler
from repro.errors import AttackError
from repro.vitis.app import VictimApplication
from repro.vitis.image import Image

INPUT_HW = 32


@pytest.fixture
def attack_setup(shells):
    attacker_shell, victim_shell = shells
    profiler = OfflineProfiler(attacker_shell, input_hw=INPUT_HW)
    profiles = profiler.profile_library(["resnet50_pt", "squeezenet_pt"])
    attack = MemoryScrapingAttack(attacker_shell, profiles)
    application = VictimApplication(victim_shell, input_hw=INPUT_HW)
    return attack, application


class TestPhaseDiscipline:
    def test_initial_phase(self, attack_setup):
        attack, _ = attack_setup
        assert attack.phase is AttackPhase.IDLE

    def test_harvest_before_observe_rejected(self, attack_setup):
        attack, _ = attack_setup
        with pytest.raises(AttackError):
            attack.harvest_addresses()

    def test_extract_before_harvest_rejected(self, attack_setup):
        attack, application = attack_setup
        application.launch("resnet50_pt", infer=False)
        attack.observe_victim("resnet50_pt")
        with pytest.raises(AttackError):
            attack.extract()

    def test_analyze_before_extract_rejected(self, attack_setup):
        attack, application = attack_setup
        application.launch("resnet50_pt", infer=False)
        attack.observe_victim("resnet50_pt")
        attack.harvest_addresses()
        with pytest.raises(AttackError):
            attack.analyze()

    def test_phases_advance_in_order(self, attack_setup):
        attack, application = attack_setup
        run = application.launch("resnet50_pt")
        attack.observe_victim("resnet50_pt")
        assert attack.phase is AttackPhase.VICTIM_OBSERVED
        attack.harvest_addresses()
        assert attack.phase is AttackPhase.ADDRESSES_HARVESTED
        run.terminate()
        attack.extract()
        assert attack.phase is AttackPhase.EXTRACTED
        attack.analyze()
        assert attack.phase is AttackPhase.ANALYZED


class TestFullAttack:
    def test_execute_recovers_everything(self, attack_setup):
        attack, application = attack_setup
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=7).corrupted(0.2)
        run = application.launch("resnet50_pt", image=secret)
        report = attack.execute("resnet50_pt", terminate_victim=run.terminate)
        assert report.succeeded
        assert report.identification.best_model == "resnet50_pt"
        assert report.reconstruction is not None
        assert report.reconstruction.image.pixel_match_rate(secret) == 1.0
        assert report.reconstruction.corruption_marker_seen

    def test_report_contains_figure_artifacts(self, attack_setup):
        attack, application = attack_setup
        run = application.launch("resnet50_pt")
        report = attack.execute("resnet50_pt", terminate_victim=run.terminate)
        # Fig. 5/6/9 artifacts:
        assert "resnet50_pt" not in report.ps_before
        assert "resnet50_pt" in report.ps_during
        assert "resnet50_pt" not in report.ps_after

    def test_render_mentions_all_steps(self, attack_setup):
        attack, application = attack_setup
        run = application.launch("resnet50_pt")
        report = attack.execute("resnet50_pt", terminate_victim=run.terminate)
        text = report.render()
        for fragment in ("Step 1", "Step 2", "Step 3", "Step 4a", "Step 4b"):
            assert fragment in text

    def test_attack_against_unprofiled_model_still_identifies_nothing(
        self, attack_setup
    ):
        """A model outside the signature DB cannot be attributed."""
        from repro.errors import IdentificationError

        attack, application = attack_setup
        run = application.launch("vgg16_pt")
        attack.observe_victim("vgg16_pt")
        attack.harvest_addresses()
        run.terminate()
        attack.extract()
        with pytest.raises(IdentificationError):
            attack.analyze()

    def test_squeezenet_victim_identified_as_squeezenet(self, attack_setup):
        attack, application = attack_setup
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=3)
        run = application.launch("squeezenet_pt", image=secret)
        report = attack.execute("squeezenet_pt", terminate_victim=run.terminate)
        assert report.identification.best_model == "squeezenet_pt"
        assert report.reconstruction.image.pixel_match_rate(secret) == 1.0

    def test_dump_statistics_reported(self, attack_setup):
        attack, application = attack_setup
        run = application.launch("resnet50_pt")
        report = attack.execute("resnet50_pt", terminate_victim=run.terminate)
        assert report.dump.pages_read == len(report.harvested.present_pages())
        assert report.dump.nbytes == report.harvested.length
        assert report.termination_polls >= 1

    def test_word_and_bulk_modes_agree(self, shells):
        attacker_shell, victim_shell = shells
        profiler = OfflineProfiler(attacker_shell, input_hw=INPUT_HW)
        profiles = profiler.profile_library(["resnet50_pt"])
        application = VictimApplication(victim_shell, input_hw=INPUT_HW)
        dumps = {}
        for label, bulk in (("word", False), ("bulk", True)):
            attack = MemoryScrapingAttack(
                attacker_shell, profiles, config=AttackConfig(bulk_reads=bulk)
            )
            run = application.launch("resnet50_pt")
            report = attack.execute(
                "resnet50_pt", terminate_victim=run.terminate
            )
            dumps[label] = report.dump.data
        assert dumps["word"] == dumps["bulk"]
