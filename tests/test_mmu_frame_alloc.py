"""Unit tests for the frame allocator — determinism and residue exposure."""

import pytest

from repro.errors import OutOfMemoryError
from repro.mmu.frame_alloc import FrameAllocator, ReusePolicy


@pytest.fixture
def allocator() -> FrameAllocator:
    return FrameAllocator(total_frames=64)


class TestConstruction:
    def test_zero_frames_rejected(self):
        with pytest.raises(ValueError):
            FrameAllocator(total_frames=0)

    def test_base_frame_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FrameAllocator(total_frames=8, base_frame=8)

    def test_base_frame_reserves_low_frames(self):
        allocator = FrameAllocator(total_frames=64, base_frame=16)
        assert allocator.allocate(1) == [16]
        assert allocator.free_frames() == 47


class TestAllocation:
    def test_first_allocations_ascend(self, allocator):
        assert allocator.allocate(3) == [0, 1, 2]
        assert allocator.allocate(2) == [3, 4]

    def test_deterministic_across_instances(self):
        first = FrameAllocator(total_frames=64)
        second = FrameAllocator(total_frames=64)
        for _ in range(5):
            assert first.allocate(3) == second.allocate(3)

    def test_owner_recorded(self, allocator):
        frames = allocator.allocate(2, owner=42)
        for frame in frames:
            assert allocator.owner_of(frame) == 42
            assert allocator.is_allocated(frame)

    def test_zero_count_rejected(self, allocator):
        with pytest.raises(ValueError):
            allocator.allocate(0)

    def test_oom_raises_without_partial_allocation(self, allocator):
        allocator.allocate(60)
        free_before = allocator.free_frames()
        with pytest.raises(OutOfMemoryError):
            allocator.allocate(10)
        assert allocator.free_frames() == free_before

    def test_counters(self, allocator):
        allocator.allocate(4)
        frames = allocator.allocate(2)
        allocator.free(frames)
        assert allocator.stats.frames_allocated == 6
        assert allocator.stats.frames_freed == 2
        assert allocator.allocated_frames() == 4


class TestFree:
    def test_free_returns_to_pool(self, allocator):
        frames = allocator.allocate(4, owner=1)
        allocator.free(frames)
        for frame in frames:
            assert allocator.is_free(frame)
            assert allocator.owner_of(frame) is None

    def test_last_owner_survives_free(self, allocator):
        frames = allocator.allocate(2, owner=7)
        allocator.free(frames)
        assert allocator.last_owner_of(frames[0]) == 7

    def test_double_free_rejected(self, allocator):
        frames = allocator.allocate(2)
        allocator.free(frames)
        with pytest.raises(ValueError):
            allocator.free(frames)

    def test_wild_free_rejected(self, allocator):
        with pytest.raises(ValueError):
            allocator.free([63])

    def test_wild_free_is_atomic(self, allocator):
        frames = allocator.allocate(2)
        with pytest.raises(ValueError):
            allocator.free(frames + [63])
        # The valid frames must not have been freed by the failed call.
        assert allocator.is_allocated(frames[0])


class TestReusePolicies:
    def test_lifo_reuses_most_recently_freed_first(self):
        allocator = FrameAllocator(total_frames=64, policy=ReusePolicy.LIFO)
        first = allocator.allocate(3)
        allocator.free(first)
        assert allocator.allocate(1) == [first[-1]]

    def test_fifo_reuses_oldest_freed_first(self):
        allocator = FrameAllocator(total_frames=64, policy=ReusePolicy.FIFO)
        first = allocator.allocate(3)
        allocator.free(first)
        assert allocator.allocate(1) == [first[0]]

    def test_freed_frames_preferred_over_fresh(self, allocator):
        frames = allocator.allocate(2)
        allocator.free(frames)
        reused = allocator.allocate(2)
        assert set(reused) == set(frames)

    def test_random_policy_is_seed_deterministic(self):
        def sequence(seed: int) -> list[int]:
            allocator = FrameAllocator(
                total_frames=64, policy=ReusePolicy.RANDOM, seed=seed
            )
            frames = allocator.allocate(16)
            allocator.free(frames)
            return allocator.allocate(16)

        assert sequence(1) == sequence(1)

    def test_random_policy_randomizes_first_allocation(self):
        """Physical ASLR: even a pristine board's first allocation is
        unpredictable — this is what defeats profiled-PA replay."""
        allocator = FrameAllocator(
            total_frames=256, policy=ReusePolicy.RANDOM, seed=3
        )
        frames = allocator.allocate(16)
        assert frames != list(range(16))
        assert len(set(frames)) == 16

    def test_random_policy_differs_across_seeds(self):
        first = FrameAllocator(
            total_frames=256, policy=ReusePolicy.RANDOM, seed=1
        ).allocate(32)
        second = FrameAllocator(
            total_frames=256, policy=ReusePolicy.RANDOM, seed=2
        ).allocate(32)
        assert first != second

    def test_random_policy_never_double_allocates(self):
        allocator = FrameAllocator(
            total_frames=64, policy=ReusePolicy.RANDOM, seed=3
        )
        first = allocator.allocate(30)
        second = allocator.allocate(30)
        assert not set(first) & set(second)

    def test_policy_property(self):
        allocator = FrameAllocator(total_frames=8, policy=ReusePolicy.FIFO)
        assert allocator.policy is ReusePolicy.FIFO


class TestResidueExposure:
    """The attack-relevant behaviour: freed frames keep identity."""

    def test_victim_frames_stay_free_until_reused(self, allocator):
        victim_frames = allocator.allocate(8, owner=100)
        allocator.free(victim_frames)
        # A smaller later allocation leaves some victim frames free.
        allocator.allocate(3, owner=200)
        surviving = [f for f in victim_frames if allocator.is_free(f)]
        assert len(surviving) == 5

    def test_reuse_reassigns_last_owner(self, allocator):
        victim_frames = allocator.allocate(4, owner=100)
        allocator.free(victim_frames)
        reused = allocator.allocate(4, owner=200)
        for frame in reused:
            assert allocator.last_owner_of(frame) == 200
