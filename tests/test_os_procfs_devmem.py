"""Unit tests for procfs and devmem — the leaked interfaces."""

import pytest

from repro.errors import BusError, NoSuchProcessError, PermissionDeniedError
from repro.hw.soc import ZynqMpSoC
from repro.mmu.pagemap import ENTRY_SIZE, entry_from_bytes
from repro.petalinux.devmem import Devmem
from repro.petalinux.kernel import KernelConfig, PetaLinuxKernel
from repro.petalinux.procfs import ProcFs
from repro.petalinux.users import ROOT, User

ATTACKER = User("attacker", 1001)
VICTIM = User("victim", 1002)


@pytest.fixture
def kernel() -> PetaLinuxKernel:
    return PetaLinuxKernel(ZynqMpSoC())


@pytest.fixture
def hardened_kernel() -> PetaLinuxKernel:
    return PetaLinuxKernel(ZynqMpSoC(), KernelConfig().hardened())


class TestProcFsVulnerableDefault:
    """On the paper's board, everything is world-readable."""

    def test_cross_user_maps_read(self, kernel):
        victim = kernel.spawn(["./resnet50_pt"], user=VICTIM)
        maps = ProcFs(kernel).read_maps(victim.pid, caller=ATTACKER)
        assert "[heap]" in maps

    def test_cross_user_pagemap_read(self, kernel):
        victim = kernel.spawn(["./resnet50_pt"], user=VICTIM)
        heap = victim.address_space.heap()
        raw = ProcFs(kernel).read_pagemap(
            victim.pid, (heap.start >> 12) * ENTRY_SIZE, ENTRY_SIZE,
            caller=ATTACKER,
        )
        assert entry_from_bytes(raw).present

    def test_cross_user_cmdline_read(self, kernel):
        victim = kernel.spawn(["./resnet50_pt", "m.xmodel"], user=VICTIM)
        cmdline = ProcFs(kernel).read_cmdline(victim.pid, caller=ATTACKER)
        assert cmdline == b"./resnet50_pt\x00m.xmodel\x00"

    def test_status_fields(self, kernel):
        victim = kernel.spawn(["./resnet50_pt"], user=VICTIM)
        status = ProcFs(kernel).read_status(victim.pid, caller=ATTACKER)
        assert "Name:\tresnet50_pt" in status
        assert f"Pid:\t{victim.pid}" in status
        assert "VmRSS:" in status

    def test_list_pids(self, kernel):
        victim = kernel.spawn(["./a"], user=VICTIM)
        assert victim.pid in ProcFs(kernel).list_pids(caller=ATTACKER)

    def test_dead_pid_raises(self, kernel):
        victim = kernel.spawn(["./a"], user=VICTIM)
        kernel.exit_process(victim.pid)
        with pytest.raises(NoSuchProcessError):
            ProcFs(kernel).read_maps(victim.pid, caller=ATTACKER)


class TestProcFsHardened:
    def test_cross_user_maps_blocked(self, hardened_kernel):
        victim = hardened_kernel.spawn(["./a"], user=VICTIM)
        with pytest.raises(PermissionDeniedError):
            ProcFs(hardened_kernel).read_maps(victim.pid, caller=ATTACKER)

    def test_own_process_still_readable(self, hardened_kernel):
        own = hardened_kernel.spawn(["./a"], user=ATTACKER)
        maps = ProcFs(hardened_kernel).read_maps(own.pid, caller=ATTACKER)
        assert "[heap]" in maps

    def test_root_bypasses(self, hardened_kernel):
        victim = hardened_kernel.spawn(["./a"], user=VICTIM)
        maps = ProcFs(hardened_kernel).read_maps(victim.pid, caller=ROOT)
        assert "[heap]" in maps

    def test_pagemap_blocked_even_for_owner_without_root(self):
        config = KernelConfig(pagemap_world_readable=False)
        kernel = PetaLinuxKernel(ZynqMpSoC(), config)
        own = kernel.spawn(["./a"], user=ATTACKER)
        with pytest.raises(PermissionDeniedError):
            ProcFs(kernel).read_pagemap(own.pid, 0, ENTRY_SIZE, caller=ATTACKER)

    def test_pid_listing_still_visible(self, hardened_kernel):
        victim = hardened_kernel.spawn(["./a"], user=VICTIM)
        assert victim.pid in ProcFs(hardened_kernel).list_pids(caller=ATTACKER)


class TestPagemapReads:
    def test_unaligned_offset_rejected(self, kernel):
        victim = kernel.spawn(["./a"], user=VICTIM)
        with pytest.raises(ValueError):
            ProcFs(kernel).read_pagemap(victim.pid, 3, 8, caller=ATTACKER)

    def test_unaligned_length_rejected(self, kernel):
        victim = kernel.spawn(["./a"], user=VICTIM)
        with pytest.raises(ValueError):
            ProcFs(kernel).read_pagemap(victim.pid, 0, 5, caller=ATTACKER)

    def test_unmapped_range_reads_absent_entries(self, kernel):
        victim = kernel.spawn(["./a"], user=VICTIM)
        raw = ProcFs(kernel).read_pagemap(victim.pid, 0, 16, caller=ATTACKER)
        assert raw == b"\x00" * 16

    def test_batched_read_spans_heap(self, kernel):
        victim = kernel.spawn(["./a"], user=VICTIM)
        heap = victim.address_space.heap()
        pages = (heap.end - heap.start) // 4096
        raw = ProcFs(kernel).read_pagemap(
            victim.pid, (heap.start >> 12) * ENTRY_SIZE, pages * ENTRY_SIZE,
            caller=ATTACKER,
        )
        entries = [
            entry_from_bytes(raw[index : index + ENTRY_SIZE])
            for index in range(0, len(raw), ENTRY_SIZE)
        ]
        assert all(entry.present for entry in entries)


class TestDevmem:
    def test_read_returns_word(self, kernel):
        kernel.soc.write_word(0x6100_0000, 0xF7F5F8FD)
        value = Devmem(kernel).read(0x6100_0000, caller=ATTACKER)
        assert value == 0xF7F5F8FD

    def test_render_matches_paper_format(self, kernel):
        kernel.soc.write_word(0x6100_0000, 0xF7F5F8FD)
        line = Devmem(kernel).render(0x6100_0000, caller=ATTACKER)
        assert line == "0xF7F5F8FD"

    def test_read_range_word_sequence(self, kernel):
        kernel.soc.write_physical(0x6100_0000, bytes(range(16)))
        words = Devmem(kernel).read_range(0x6100_0000, 16, caller=ATTACKER)
        assert len(words) == 4
        assert words[0] == int.from_bytes(bytes(range(4)), "little")

    def test_strict_devmem_blocks_user(self):
        config = KernelConfig(devmem_unrestricted=False)
        kernel = PetaLinuxKernel(ZynqMpSoC(), config)
        with pytest.raises(PermissionDeniedError):
            Devmem(kernel).read(0x6100_0000, caller=ATTACKER)

    def test_strict_devmem_allows_root(self):
        config = KernelConfig(devmem_unrestricted=False)
        kernel = PetaLinuxKernel(ZynqMpSoC(), config)
        assert Devmem(kernel).read(0x6100_0000, caller=ROOT) == 0

    def test_unmapped_address_bus_errors(self, kernel):
        with pytest.raises(BusError):
            Devmem(kernel).read(0xF000_0000, caller=ATTACKER)

    def test_bad_width_rejected(self, kernel):
        with pytest.raises(ValueError):
            Devmem(kernel).read(0x6100_0000, caller=ATTACKER, width_bits=24)

    def test_read_bytes_bulk(self, kernel):
        kernel.soc.write_physical(0x6100_0000, b"bulk-read")
        data = Devmem(kernel).read_bytes(0x6100_0000, 9, caller=ATTACKER)
        assert data == b"bulk-read"
