"""Unit tests for the PetaLinux kernel twin — lifecycle and residue."""

import pytest

from repro.errors import NoSuchProcessError, ProcessStateError
from repro.hw.soc import ZynqMpSoC
from repro.mmu.frame_alloc import ReusePolicy
from repro.petalinux.kernel import (
    DEFAULT_RESERVED_FRAMES,
    KernelConfig,
    PetaLinuxKernel,
)
from repro.petalinux.process import DEFAULT_HEAP_BASE
from repro.petalinux.sanitizer import SanitizePolicy
from repro.petalinux.users import ROOT, Terminal, User


@pytest.fixture
def kernel() -> PetaLinuxKernel:
    return PetaLinuxKernel(ZynqMpSoC())


def _victim_user() -> User:
    return User("victim", 1002)


class TestBoot:
    def test_init_and_kthreadd_present(self, kernel):
        pids = [process.pid for process in kernel.processes()]
        assert 1 in pids
        assert 2 in pids

    def test_kworker_spawned(self, kernel):
        commands = [process.command for process in kernel.processes()]
        assert any("kworker" in command for command in commands)

    def test_user_allocations_start_above_reserved_frames(self, kernel):
        process = kernel.spawn(["./app"], user=_victim_user())
        physical = kernel.soc.dram_frame_to_physical(
            process.address_space.page_table.frames()[0]
        )
        assert physical >= DEFAULT_RESERVED_FRAMES * 4096 == 0x6000_0000


class TestSpawn:
    def test_pids_ascend(self, kernel):
        first = kernel.spawn(["./a"], user=_victim_user())
        second = kernel.spawn(["./b"], user=_victim_user())
        assert second.pid == first.pid + 1

    def test_empty_cmdline_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.spawn([], user=_victim_user())

    def test_spawn_creates_heap_arena(self, kernel):
        process = kernel.spawn(["./app"], user=_victim_user())
        assert process.heap_arena is not None

    def test_heap_at_default_base_without_aslr(self, kernel):
        process = kernel.spawn(["./app"], user=_victim_user())
        assert process.address_space.heap().start == DEFAULT_HEAP_BASE

    def test_device_paths_mapped(self, kernel):
        process = kernel.spawn(
            ["./app"], user=_victim_user(),
            device_paths=("/dev/dri/renderD128",),
        )
        assert process.address_space.vma_by_name("/dev/dri/renderD128") is not None

    def test_terminal_recorded(self, kernel):
        terminal = Terminal("pts/1", _victim_user())
        process = kernel.spawn(["./app"], user=_victim_user(), terminal=terminal)
        assert process.tty_name() == "pts/1"


class TestExit:
    def test_pid_leaves_process_table(self, kernel):
        process = kernel.spawn(["./app"], user=_victim_user())
        kernel.exit_process(process.pid)
        assert not kernel.has_process(process.pid)
        with pytest.raises(NoSuchProcessError):
            kernel.find_process(process.pid)

    def test_frames_return_to_allocator(self, kernel):
        free_before = kernel.allocator.free_frames()
        process = kernel.spawn(["./app"], user=_victim_user())
        kernel.exit_process(process.pid)
        assert kernel.allocator.free_frames() == free_before

    def test_double_exit_rejected(self, kernel):
        process = kernel.spawn(["./app"], user=_victim_user())
        kernel.exit_process(process.pid)
        with pytest.raises((NoSuchProcessError, ProcessStateError)):
            kernel.exit_process(process.pid)

    def test_kill_records_exit_code(self, kernel):
        process = kernel.spawn(["./app"], user=_victim_user())
        kernel.kill(process.pid)
        reaped = kernel.reaped_process(process.pid)
        assert reaped is not None
        assert reaped.exit_code == 137

    def test_residue_survives_exit_on_default_config(self, kernel):
        """The paper's core finding, at kernel level."""
        process = kernel.spawn(["./app"], user=_victim_user())
        arena = process.heap_arena
        address = arena.allocate_and_write(b"PRIVATE_VICTIM_BYTES")
        physical = kernel.soc.dram_frame_to_physical(
            process.address_space.translate(address) >> 12
        ) + (address & 0xFFF)
        kernel.exit_process(process.pid)
        assert kernel.soc.read_physical(physical, 20) == b"PRIVATE_VICTIM_BYTES"

    def test_zero_on_free_scrubs_residue(self):
        kernel = PetaLinuxKernel(
            ZynqMpSoC(),
            KernelConfig(sanitize_policy=SanitizePolicy.ZERO_ON_FREE),
        )
        process = kernel.spawn(["./app"], user=_victim_user())
        address = process.heap_arena.allocate_and_write(b"PRIVATE")
        physical = kernel.soc.dram_frame_to_physical(
            process.address_space.translate(address) >> 12
        ) + (address & 0xFFF)
        kernel.exit_process(process.pid)
        assert kernel.soc.read_physical(physical, 7) == b"\x00" * 7


class TestClockAndTicks:
    def test_wall_clock_starts_at_boot_time(self, kernel):
        assert kernel.wall_clock() == "03:51"

    def test_tick_advances_minutes(self, kernel):
        kernel.tick(120)
        assert kernel.wall_clock() == "03:53"

    def test_tick_accumulates_cpu_time(self, kernel):
        process = kernel.spawn(["./app"], user=_victim_user())
        kernel.tick(5)
        assert process.cpu_seconds == 5

    def test_negative_ticks_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.tick(-1)

    def test_scrub_pool_drains_on_ticks(self):
        kernel = PetaLinuxKernel(
            ZynqMpSoC(),
            KernelConfig(
                sanitize_policy=SanitizePolicy.SCRUB_POOL, scrub_rate_per_tick=4
            ),
        )
        process = kernel.spawn(["./app"], user=_victim_user())
        kernel.exit_process(process.pid)
        pending_before = kernel.sanitizer.pending
        assert pending_before > 0
        kernel.tick(2)
        assert kernel.sanitizer.pending == pending_before - 8


class TestConfig:
    def test_hardened_flips_every_knob(self):
        hardened = KernelConfig().hardened()
        assert hardened.sanitize_policy is SanitizePolicy.ZERO_ON_FREE
        assert not hardened.pagemap_world_readable
        assert not hardened.procfs_world_readable
        assert not hardened.devmem_unrestricted
        assert hardened.randomization.physical
        assert hardened.randomization.virtual

    def test_physical_randomization_overrides_allocator_policy(self):
        from repro.petalinux.aslr import LayoutRandomization

        kernel = PetaLinuxKernel(
            ZynqMpSoC(),
            KernelConfig(randomization=LayoutRandomization(physical=True)),
        )
        assert kernel.allocator.policy is ReusePolicy.RANDOM

    def test_virtual_aslr_slides_heap(self):
        from repro.petalinux.aslr import LayoutRandomization

        kernel = PetaLinuxKernel(
            ZynqMpSoC(),
            KernelConfig(randomization=LayoutRandomization(virtual=True, seed=5)),
        )
        first = kernel.spawn(["./a"], user=_victim_user())
        second = kernel.spawn(["./b"], user=_victim_user())
        bases = {
            first.address_space.heap().start,
            second.address_space.heap().start,
        }
        assert DEFAULT_HEAP_BASE not in bases or len(bases) == 2


class TestPagemapBackend:
    def test_entry_for_mapped_page(self, kernel):
        process = kernel.spawn(["./app"], user=_victim_user())
        heap = process.address_space.heap()
        entry = kernel.pagemap_entry(process.pid, heap.start >> 12)
        assert entry.present
        physical = entry.pfn << 12
        assert physical >= 0x6000_0000

    def test_entry_for_unmapped_page_absent(self, kernel):
        process = kernel.spawn(["./app"], user=_victim_user())
        entry = kernel.pagemap_entry(process.pid, 0x12345)
        assert not entry.present
        assert entry.pfn == 0

    def test_pagemap_entry_matches_soc_contents(self, kernel):
        process = kernel.spawn(["./app"], user=_victim_user())
        address = process.heap_arena.allocate_and_write(b"check me")
        entry = kernel.pagemap_entry(process.pid, address >> 12)
        physical = (entry.pfn << 12) | (address & 0xFFF)
        assert kernel.soc.read_physical(physical, 8) == b"check me"
