"""Unit tests for the evaluation metrics."""

import pytest

from repro.errors import EmptyMetricError, MetricsError, ReproError
from repro.evaluation.metrics import (
    byte_recovery_rate,
    identification_accuracy,
    image_fidelity,
    residue_survival,
    window_hit_rate,
)
from repro.mmu.frame_alloc import FrameAllocator
from repro.vitis.image import Image


class TestByteRecoveryRate:
    def test_identical(self):
        assert byte_recovery_rate(b"abcd", b"abcd") == 1.0

    def test_disjoint(self):
        assert byte_recovery_rate(b"\x01\x02", b"\x03\x04") == 0.0

    def test_partial(self):
        assert byte_recovery_rate(b"ab__", b"abcd") == 0.5

    def test_empty(self):
        assert byte_recovery_rate(b"", b"") == 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            byte_recovery_rate(b"ab", b"abc")


class TestImageFidelity:
    def test_exact(self):
        image = Image.test_pattern(8, 8)
        fidelity = image_fidelity(image, image)
        assert fidelity.is_exact
        assert fidelity.psnr_db == float("inf")

    def test_inexact(self):
        image = Image.solid(8, 8, (100, 100, 100))
        other = Image.solid(8, 8, (110, 100, 100))
        fidelity = image_fidelity(other, image)
        assert not fidelity.is_exact
        assert fidelity.pixel_match_rate == 0.0
        assert fidelity.psnr_db > 20


class TestIdentificationAccuracy:
    def test_all_correct(self):
        assert identification_accuracy(["a", "b"], ["a", "b"]) == 1.0

    def test_half_correct(self):
        assert identification_accuracy(["a", "x"], ["a", "b"]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            identification_accuracy([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            identification_accuracy(["a"], ["a", "b"])


class TestResidueSurvival:
    def test_all_free_frames_survive(self):
        allocator = FrameAllocator(total_frames=16)
        frames = allocator.allocate(4, owner=1)
        allocator.free(frames)
        assert residue_survival(allocator, frames) == 1.0

    def test_reused_frames_do_not_survive(self):
        allocator = FrameAllocator(total_frames=16)
        frames = allocator.allocate(4, owner=1)
        allocator.free(frames)
        allocator.allocate(2, owner=2)
        assert residue_survival(allocator, frames) == 0.5

    def test_empty_frame_list_rejected(self):
        allocator = FrameAllocator(total_frames=16)
        with pytest.raises(ValueError):
            residue_survival(allocator, [])


class TestEmptyMetricError:
    """Empty samples raise the typed error, not a bare ValueError."""

    def test_window_hit_rate_empty_raises_typed_error(self):
        with pytest.raises(EmptyMetricError) as excinfo:
            window_hit_rate([])
        assert excinfo.value.metric == "window_hit_rate"
        assert excinfo.value.what == "residue_counts"
        assert "undefined" in str(excinfo.value)

    def test_residue_survival_empty_raises_typed_error(self):
        allocator = FrameAllocator(total_frames=16)
        with pytest.raises(EmptyMetricError) as excinfo:
            residue_survival(allocator, [])
        assert excinfo.value.metric == "residue_survival"

    def test_typed_error_is_still_a_value_error(self):
        # Pre-existing `except ValueError` call sites must keep
        # working; the typed error is a refinement, not a break.
        error = EmptyMetricError("window_hit_rate", "residue_counts")
        assert isinstance(error, ValueError)
        assert isinstance(error, MetricsError)
        assert isinstance(error, ReproError)

    def test_nonempty_sample_still_defined(self):
        assert window_hit_rate([0, 64, 0]) == pytest.approx(1 / 3)
