"""Unit tests for quantized tensors and images."""

import numpy as np
import pytest

from repro.errors import ImageFormatError
from repro.vitis.image import PROFILING_MARKER, WHITE_MARKER, Image
from repro.vitis.tensor import QuantizedTensor


class TestQuantizedTensor:
    def test_requires_int8(self):
        with pytest.raises(TypeError):
            QuantizedTensor(np.zeros(4, dtype=np.float32))

    def test_fix_point_bounds(self):
        with pytest.raises(ValueError):
            QuantizedTensor(np.zeros(4, dtype=np.int8), fix_point=40)

    def test_shape_and_nbytes(self):
        tensor = QuantizedTensor(np.zeros((2, 3), dtype=np.int8))
        assert tensor.shape == (2, 3)
        assert tensor.nbytes == 6

    def test_dequantize(self):
        tensor = QuantizedTensor(np.array([64, -64], dtype=np.int8), fix_point=6)
        assert tensor.dequantize().tolist() == [1.0, -1.0]

    def test_bytes_roundtrip(self):
        values = np.arange(-8, 8, dtype=np.int8).reshape(4, 4)
        tensor = QuantizedTensor(values, fix_point=3)
        rebuilt = QuantizedTensor.from_bytes(tensor.to_bytes(), (4, 4), 3)
        assert np.array_equal(rebuilt.values, values)

    def test_from_bytes_length_checked(self):
        with pytest.raises(ValueError):
            QuantizedTensor.from_bytes(b"\x00" * 5, (2, 2))

    def test_quantize_saturates(self):
        tensor = QuantizedTensor.quantize(np.array([10.0, -10.0]), fix_point=7)
        assert tensor.values.tolist() == [127, -128]

    def test_quantize_rounds(self):
        tensor = QuantizedTensor.quantize(np.array([0.5]), fix_point=1)
        assert tensor.values.tolist() == [1]


class TestImageConstruction:
    def test_solid(self):
        image = Image.solid(4, 3, (1, 2, 3))
        assert image.width == 4
        assert image.height == 3
        assert image.pixels[0, 0].tolist() == [1, 2, 3]

    def test_test_pattern_deterministic(self):
        first = Image.test_pattern(16, 16, seed=3)
        second = Image.test_pattern(16, 16, seed=3)
        assert np.array_equal(first.pixels, second.pixels)

    def test_test_pattern_seed_changes_content(self):
        first = Image.test_pattern(16, 16, seed=3)
        second = Image.test_pattern(16, 16, seed=4)
        assert not np.array_equal(first.pixels, second.pixels)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ImageFormatError):
            Image.test_pattern(0, 4)

    def test_wrong_dtype_rejected(self):
        with pytest.raises(ImageFormatError):
            Image(np.zeros((4, 4, 3), dtype=np.float32))

    def test_wrong_channel_count_rejected(self):
        with pytest.raises(ImageFormatError):
            Image(np.zeros((4, 4, 4), dtype=np.uint8))


class TestRawBytes:
    def test_raw_rgb_layout_is_row_major_rgb(self):
        pixels = np.zeros((1, 2, 3), dtype=np.uint8)
        pixels[0, 0] = (1, 2, 3)
        pixels[0, 1] = (4, 5, 6)
        assert Image(pixels).to_raw_rgb() == bytes([1, 2, 3, 4, 5, 6])

    def test_from_raw_roundtrip(self):
        image = Image.test_pattern(8, 6, seed=1)
        rebuilt = Image.from_raw_rgb(image.to_raw_rgb(), 8, 6)
        assert np.array_equal(rebuilt.pixels, image.pixels)

    def test_from_raw_length_checked(self):
        with pytest.raises(ImageFormatError):
            Image.from_raw_rgb(b"\x00" * 10, 2, 2)

    def test_solid_white_is_all_ff_bytes(self):
        """0xFFFFFF pixels = solid 0xFF bytes = the Fig. 12 pattern."""
        image = Image.solid(4, 4, WHITE_MARKER)
        assert image.to_raw_rgb() == b"\xff" * 48

    def test_profiling_marker_is_all_55_bytes(self):
        image = Image.solid(4, 4, PROFILING_MARKER)
        assert image.to_raw_rgb() == b"\x55" * 48


class TestCorruption:
    def test_corrupts_top_fraction(self):
        image = Image.test_pattern(10, 10, seed=1)
        corrupted = image.corrupted(0.2)
        assert corrupted.marker_fraction(WHITE_MARKER) == pytest.approx(0.2)

    def test_rest_of_image_untouched(self):
        image = Image.test_pattern(10, 10, seed=1)
        corrupted = image.corrupted(0.2)
        assert np.array_equal(corrupted.pixels[2:], image.pixels[2:])

    def test_full_corruption(self):
        corrupted = Image.test_pattern(8, 8).corrupted(1.0)
        assert corrupted.marker_fraction(WHITE_MARKER) == 1.0

    def test_bad_fraction_rejected(self):
        with pytest.raises(ImageFormatError):
            Image.test_pattern(8, 8).corrupted(0.0)

    def test_original_not_mutated(self):
        image = Image.test_pattern(8, 8, seed=1)
        before = image.pixels.copy()
        image.corrupted(0.5)
        assert np.array_equal(image.pixels, before)


class TestComparison:
    def test_pixel_match_rate_identical(self):
        image = Image.test_pattern(8, 8)
        assert image.pixel_match_rate(image) == 1.0

    def test_pixel_match_rate_partial(self):
        image = Image.solid(10, 10, (0, 0, 0))
        other = image.corrupted(0.3)
        assert other.pixel_match_rate(image) == pytest.approx(0.7)

    def test_psnr_identical_is_inf(self):
        image = Image.test_pattern(8, 8)
        assert image.psnr(image) == float("inf")

    def test_psnr_decreases_with_noise(self):
        image = Image.solid(16, 16, (128, 128, 128))
        slightly_off = Image(np.clip(image.pixels + 1, 0, 255).astype(np.uint8))
        very_off = Image(np.clip(image.pixels + 64, 0, 255).astype(np.uint8))
        assert image.psnr(slightly_off) > image.psnr(very_off)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ImageFormatError):
            Image.test_pattern(8, 8).pixel_match_rate(Image.test_pattern(4, 4))
