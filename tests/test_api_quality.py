"""API quality gates: public surface is documented and importable."""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro",
    "repro.utils",
    "repro.hw",
    "repro.mmu",
    "repro.petalinux",
    "repro.vitis",
    "repro.attack",
    "repro.evaluation",
]


def _walk_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(f"{package_name}.{info.name}")


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            module.__name__
            for module in _walk_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert not undocumented, undocumented

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in _walk_modules():
            for name, member in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(member) or inspect.isfunction(member)):
                    continue
                if getattr(member, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not (member.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented

    def test_public_methods_documented(self):
        undocumented = []
        for module in _walk_modules():
            for class_name, klass in vars(module).items():
                if class_name.startswith("_") or not inspect.isclass(klass):
                    continue
                if klass.__module__ != module.__name__:
                    continue
                for method_name, method in vars(klass).items():
                    if method_name.startswith("_"):
                        continue
                    if not (
                        inspect.isfunction(method)
                        or isinstance(method, (property, staticmethod, classmethod))
                    ):
                        continue
                    target = (
                        method.fget if isinstance(method, property)
                        else method.__func__
                        if isinstance(method, (staticmethod, classmethod))
                        else method
                    )
                    if target is None or not (target.__doc__ or "").strip():
                        undocumented.append(
                            f"{module.__name__}.{class_name}.{method_name}"
                        )
        assert not undocumented, undocumented


class TestPublicApi:
    def test_all_exports_resolve(self):
        for module in _walk_modules():
            exported = getattr(module, "__all__", None)
            if exported is None:
                continue
            for name in exported:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_top_level_package_has_version(self):
        assert hasattr(repro, "__version__")
        assert repro.__version__.count(".") == 2
