"""Tests for the fuzzlab: generator, oracles, shrinking, corpus.

The acceptance contract pinned here:

- ``run_fuzz`` is byte-deterministic for a fixed ``(seed, budget)``;
- every committed corpus seed under ``tests/corpus/fuzzlab`` replays
  green;
- an intentionally planted oracle violation is detected by the right
  oracle, shrunk to a minimal scenario, serialized, and reproduced by
  a replay of the serialized seed alone.
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

import repro.fuzzlab.runner as fuzz_runner
from repro.fuzzlab import (
    ORACLES,
    PLANTED_FAULTS,
    WORLD_INTEGRITY,
    Scenario,
    ScenarioGenerator,
    ScenarioVerdict,
    check_world,
    iter_corpus,
    load_scenario,
    oracle_names,
    replay,
    run_fuzz,
    run_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
    shrink,
    with_plant,
)

CORPUS_DIR = Path(__file__).parent / "corpus" / "fuzzlab"


def small_scenario(**overrides) -> Scenario:
    """A cheap but non-trivial world for plant/shrink tests."""
    fields = dict(
        scenario_id=0,
        seed=3,
        boards=2,
        victims=3,
        tenants_per_board=2,
        wave_size=2,
        model_mix=("resnet50_pt", "squeezenet_pt"),
        board_names=("ZCU104",),
        input_hw=16,
        corruption_fraction=0.2,
        coalesce_reads=True,
        executor="inprocess",
        processes=None,
        resume_executor="inprocess",
        interrupt_after=2,
        defense_profile="none",
        scrape_delay_ticks=1,
        carve_window=256,
        analysis_cap=4096,
    )
    fields.update(overrides)
    return Scenario(**fields)


class TestScenarioGenerator:
    def test_same_seed_same_stream(self):
        assert (
            ScenarioGenerator(seed=5).generate(8)
            == ScenarioGenerator(seed=5).generate(8)
        )

    def test_scenario_k_independent_of_batch(self):
        generator = ScenarioGenerator(seed=5)
        assert generator.generate(8)[6] == generator.scenario(6)

    def test_different_seeds_differ(self):
        assert (
            ScenarioGenerator(seed=1).generate(4)
            != ScenarioGenerator(seed=2).generate(4)
        )

    def test_generated_scenarios_are_valid_and_diverse(self):
        scenarios = ScenarioGenerator(seed=0).generate(40)
        for scenario in scenarios:
            scenario.to_spec()  # revalidates every spec-shaped field
            assert 1 <= scenario.interrupt_after <= scenario.victims
        assert len({s.defense_profile for s in scenarios}) >= 4
        assert {s.executor for s in scenarios} == {
            "inprocess",
            "multiprocess",
        }

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="budget"):
            ScenarioGenerator().generate(0)

    def test_round_trip(self):
        scenario = ScenarioGenerator(seed=9).scenario(3)
        assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_round_trip_through_json(self):
        scenario = small_scenario(planted_fault="resume-tamper")
        payload = json.loads(json.dumps(scenario_to_dict(scenario)))
        assert scenario_from_dict(payload) == scenario


class TestScenarioValidation:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            small_scenario(executor="quantum")

    def test_interrupt_after_clamped_to_victims(self):
        with pytest.raises(ValueError, match="interrupt_after"):
            small_scenario(victims=2, interrupt_after=3)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            small_scenario(defense_profile="adamantium")

    def test_tiny_analysis_cap_rejected(self):
        with pytest.raises(ValueError, match="analysis_cap"):
            small_scenario(analysis_cap=16)

    def test_spec_validation_is_shared(self):
        with pytest.raises(ValueError, match="unknown models"):
            small_scenario(model_mix=("resnet50_pt", "notanet"))

    def test_label_mentions_the_essentials(self):
        label = small_scenario(planted_fault="spool-tamper").label()
        assert "2b/3v" in label
        assert "crash@2" in label
        assert "plant=spool-tamper" in label

    def test_fabric_axis_validated_and_labelled(self):
        with pytest.raises(ValueError, match="fabric_workers"):
            small_scenario(fabric_workers=0)
        with pytest.raises(ValueError, match="fabric_kill_after_waves"):
            small_scenario(fabric_kill_after_waves=-1)
        label = small_scenario(
            fabric_workers=2, fabric_kill_after_waves=1
        ).label()
        assert "fabric=2w!kill@1" in label
        # The default drill (one worker, no kill) stays out of the label.
        assert "fabric" not in small_scenario().label()


class TestOracleRegistry:
    def test_expected_oracles_registered(self):
        assert oracle_names() == (
            "backing_equivalence",
            "defense_monotonicity",
            "extraction_equivalence",
            "fabric_identity",
            "region_partition",
            "report_consistency",
            "resume_identity",
            "scan_equivalence",
            "spool_integrity",
        )

    def test_world_integrity_is_reserved_not_registered(self):
        assert WORLD_INTEGRITY not in ORACLES

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            check_world(object(), ("not_an_oracle",))


class TestFuzzDeterminism:
    def test_same_seed_same_bytes_and_all_green(self):
        first = run_fuzz(budget=3, seed=0)
        second = run_fuzz(budget=3, seed=0)
        assert first.to_json() == second.to_json()
        assert first.ok, [v.violations for v in first.failures()]

    def test_verdicts_round_trip(self):
        report = run_fuzz(budget=2, seed=0)
        for verdict in report.verdicts:
            assert (
                ScenarioVerdict.from_dict(verdict.to_dict()) == verdict
            )

    def test_render_summarizes(self):
        report = run_fuzz(budget=2, seed=0)
        rendered = report.render()
        assert "seed 0, budget 2" in rendered
        assert "2 ok, 0 violating" in rendered


class TestPlantedFaults:
    """Each plant must be caught by the oracle aimed at it."""

    EXPECTED = {
        "map-tamper": "region_partition",
        "resume-tamper": "resume_identity",
        "spool-tamper": "spool_integrity",
        "residue-tamper": "defense_monotonicity",
        "report-tamper": "report_consistency",
        "backing-tamper": "backing_equivalence",
        "fabric-lost-outcome": "fabric_identity",
    }

    def test_every_fault_has_an_expectation(self):
        assert sorted(self.EXPECTED) == sorted(PLANTED_FAULTS)

    @pytest.mark.parametrize("fault", sorted(PLANTED_FAULTS))
    def test_plant_fires_its_oracle(self, fault):
        verdict = run_scenario(with_plant(small_scenario(), fault))
        assert not verdict.ok
        assert self.EXPECTED[fault] in verdict.violated_oracles

    def test_unknown_plant_rejected(self):
        from repro.fuzzlab import plant_fault

        with pytest.raises(ValueError, match="unknown planted fault"):
            plant_fault(object(), "no-such-fault")

    def test_plant_survives_empty_worlds(self):
        # A pinned-Xen fleet spools nothing; the map plant must still
        # produce a detectable corruption.
        scenario = with_plant(
            small_scenario(defense_profile="pinned_xen"), "map-tamper"
        )
        verdict = run_scenario(scenario)
        assert "region_partition" in verdict.violated_oracles

    def test_backing_plant_survives_empty_worlds(self):
        # No spooled residue means no backings either; the plant forges
        # a probe for an object the bytes side never read.
        scenario = with_plant(
            small_scenario(defense_profile="pinned_xen"), "backing-tamper"
        )
        verdict = run_scenario(scenario)
        assert "backing_equivalence" in verdict.violated_oracles


class TestWorldIntegrity:
    def test_stack_crash_is_a_finding_not_an_exception(
        self, monkeypatch, tmp_path
    ):
        def explode(scenario, workdir):
            raise RuntimeError(f"boom in {workdir}")

        monkeypatch.setattr(fuzz_runner, "build_world", explode)
        verdict = run_scenario(small_scenario(), workdir=tmp_path)
        assert verdict.violated_oracles == (WORLD_INTEGRITY,)
        message = verdict.violations[0].message
        assert "RuntimeError" in message
        # Temp paths are scrubbed so verdicts stay byte-deterministic.
        assert str(tmp_path) not in message
        assert "<workdir>" in message

    def test_fabric_kill_drill_stays_green(self):
        # Worker-count/crash-point axis: two racing workers, the first
        # killed mid-board, its shard re-leased — the fabric_identity
        # oracle must still see a byte-identical report.
        verdict = run_scenario(
            small_scenario(fabric_workers=2, fabric_kill_after_waves=1)
        )
        assert verdict.ok, verdict.violations

    def test_zero_corruption_regression_stays_fixed(self):
        # Found by the shrinker: corruption_fraction=0.0 used to crash
        # the board worker via Image.corrupted's (0, 1] contract.
        verdict = run_scenario(
            small_scenario(victims=1, boards=1, interrupt_after=1,
                           corruption_fraction=0.0)
        )
        assert verdict.ok, verdict.violations


class TestShrink:
    def test_green_scenario_refuses_to_shrink(self):
        with pytest.raises(ValueError, match="violates no oracle"):
            shrink(small_scenario(victims=1, boards=1, interrupt_after=1))

    def test_planted_violation_shrinks_to_minimal_and_replays(
        self, tmp_path
    ):
        # Inflate the world, plant a resume fault, and demand the
        # shrinker strip everything incidental.
        fat = with_plant(
            small_scenario(
                boards=3,
                victims=6,
                wave_size=3,
                tenants_per_board=3,
                interrupt_after=4,
                defense_profile="scrub_pool",
                scrape_delay_ticks=3,
                model_mix=("resnet50_pt", "squeezenet_pt", "vgg16_pt"),
                carve_window=48,
                seed=77,
            ),
            "resume-tamper",
        )
        result = shrink(fat)
        minimal = result.scenario
        assert minimal.boards == 1
        assert minimal.victims == 1
        assert minimal.wave_size == 1
        assert minimal.tenants_per_board == 1
        assert minimal.model_mix == ("resnet50_pt",)
        assert minimal.defense_profile == "none"
        assert minimal.scrape_delay_ticks == 0
        assert minimal.seed == 0
        assert minimal.planted_fault == "resume-tamper"
        assert result.steps  # the triage narrative is recorded
        assert "resume_identity" in result.verdict.violated_oracles

        # The minimal scenario serializes, and replaying the seed file
        # alone reproduces the violation.
        seed_path = save_scenario(
            minimal, tmp_path / "minimal.json", note="planted"
        )
        results = replay([seed_path])
        assert len(results) == 1
        _, verdict = results[0]
        assert "resume_identity" in verdict.violated_oracles

    def test_shrink_reuses_a_provided_verdict(self, monkeypatch):
        # A caller holding the verdict (the fuzz CLI) must not pay a
        # redundant whole-world rebuild just to re-learn it.
        # (importlib: the package exports a `shrink` *function* that
        # shadows the module on plain attribute-style imports.)
        import importlib

        fuzz_shrink = importlib.import_module("repro.fuzzlab.shrink")

        minimal = with_plant(
            small_scenario(
                boards=1, victims=1, tenants_per_board=1, wave_size=1,
                model_mix=("resnet50_pt",), interrupt_after=1,
                scrape_delay_ticks=0, corruption_fraction=0.0, seed=0,
            ),
            "resume-tamper",
        )
        verdict = run_scenario(minimal)
        calls = []
        monkeypatch.setattr(
            fuzz_shrink,
            "run_scenario",
            lambda scenario, oracles=None: calls.append(scenario),
        )
        result = shrink(minimal, verdict=verdict)
        assert calls == []  # already minimal: nothing re-ran at all
        assert result.reruns == 0
        assert result.verdict is verdict

    def test_shrink_respects_rerun_budget(self):
        fat = with_plant(
            small_scenario(boards=3, victims=6, interrupt_after=4),
            "resume-tamper",
        )
        result = shrink(fat, max_reruns=3)
        assert result.reruns <= 3
        assert not result.verdict.ok


class TestCorpus:
    def test_save_load_round_trip(self, tmp_path):
        scenario = small_scenario()
        path = save_scenario(
            scenario, tmp_path / "seed.json", note="why it matters"
        )
        loaded, note = load_scenario(path)
        assert loaded == scenario
        assert note == "why it matters"

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_scenario(path)

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": 99, "scenario": {}}))
        with pytest.raises(ValueError, match="not a fuzzlab seed"):
            load_scenario(path)

    def test_load_rejects_non_object_json(self, tmp_path):
        # Valid JSON that is not an object must be one clean ValueError,
        # not an AttributeError from the error message itself.
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="a JSON list"):
            load_scenario(path)

    def test_load_rejects_invalid_scenario(self, tmp_path):
        payload = {
            "format": 1,
            "scenario": {"scenario_id": 1, "victims": -3},
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="invalid scenario"):
            load_scenario(path)

    def test_iter_corpus_expands_directories_sorted(self, tmp_path):
        for name in ("b.json", "a.json"):
            save_scenario(small_scenario(), tmp_path / name)
        assert [p.name for p in iter_corpus([tmp_path])] == [
            "a.json",
            "b.json",
        ]

    def test_iter_corpus_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            iter_corpus([tmp_path / "ghost.json"])


class TestCommittedCorpus:
    """Every committed regression seed must replay green, forever."""

    def test_corpus_exists_and_is_non_trivial(self):
        seeds = iter_corpus([CORPUS_DIR])
        assert len(seeds) >= 5
        notes = [load_scenario(path)[1] for path in seeds]
        assert all(notes), "every committed seed carries a triage note"

    @pytest.mark.parametrize(
        "seed_path",
        sorted(CORPUS_DIR.glob("*.json")),
        ids=lambda p: p.stem,
    )
    def test_seed_replays_green(self, seed_path):
        scenario, note = load_scenario(seed_path)
        verdict = run_scenario(scenario)
        assert verdict.ok, (note, verdict.violations)
