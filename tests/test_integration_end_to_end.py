"""End-to-end integration tests: the paper's experiment, variations, defenses."""

import pytest

from repro.attack.pipeline import MemoryScrapingAttack
from repro.evaluation.metrics import byte_recovery_rate
from repro.evaluation.scenarios import BoardSession, run_paper_attack
from repro.hw.board import ZCU102
from repro.petalinux.kernel import KernelConfig
from repro.vitis.app import VictimApplication
from repro.vitis.image import Image
from repro.vitis.zoo import MODEL_NAMES

INPUT_HW = 32


class TestPaperExperiment:
    """The §IV/§V experiment, asserted quantitatively."""

    def test_full_attack_on_zcu104(self):
        session = BoardSession.boot(input_hw=INPUT_HW)
        outcome = run_paper_attack(session)
        assert outcome.model_identified_correctly
        assert outcome.image_recovered_exactly
        report = outcome.report
        assert report.dump.pages_skipped == 0
        assert report.dump.nbytes == report.harvested.length

    def test_full_attack_on_zcu102(self):
        """The paper's generalizability claim (§I-C)."""
        session = BoardSession.boot(board=ZCU102, input_hw=INPUT_HW)
        outcome = run_paper_attack(session)
        assert outcome.model_identified_correctly
        assert outcome.image_recovered_exactly

    def test_whole_heap_recovered_bit_exact(self):
        session = BoardSession.boot(input_hw=INPUT_HW)
        profiles = session.profile(["resnet50_pt"])
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=5)
        run = session.victim_application().launch("resnet50_pt", image=secret)
        attack = MemoryScrapingAttack(session.attacker_shell, profiles)
        attack.observe_victim("resnet50_pt")
        harvested = attack.harvest_addresses()
        ground_truth = run.process.address_space.read_virtual(
            harvested.heap_start, harvested.length
        )
        run.terminate()
        dump = attack.extract()
        assert byte_recovery_rate(dump.data, ground_truth) == 1.0

    def test_model_weights_recovered(self):
        """'revealing sensitive information such as input images and
        weights' — the weights land in the dump too."""
        session = BoardSession.boot(input_hw=INPUT_HW)
        profiles = session.profile(["resnet50_pt"])
        run = session.victim_application().launch("resnet50_pt")
        weight_bytes = run.model.subgraph.layers[0].weight_bytes()
        attack = MemoryScrapingAttack(session.attacker_shell, profiles)
        report = attack.execute("resnet50_pt", terminate_victim=run.terminate)
        assert weight_bytes in report.dump.data

    def test_attack_works_for_every_zoo_model(self):
        """Identification generalizes across the whole library."""
        session = BoardSession.boot(input_hw=INPUT_HW)
        profiles = session.profile(list(MODEL_NAMES))
        for name in MODEL_NAMES:
            victim = session.victim_application().launch(name)
            attack = MemoryScrapingAttack(session.attacker_shell, profiles)
            report = attack.execute(name, terminate_victim=victim.terminate)
            assert report.identification.best_model == name, name
            assert report.reconstruction is not None, name


class TestAttackerVariations:
    def test_second_attack_on_same_board_still_works(self):
        """Back-to-back victims: LIFO reuse hands the second victim the
        first's frames, but each attack snapshots its own translations."""
        session = BoardSession.boot(input_hw=INPUT_HW)
        profiles = session.profile(["resnet50_pt", "squeezenet_pt"])
        for name, seed in (("resnet50_pt", 3), ("squeezenet_pt", 4)):
            secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=seed)
            victim = session.victim_application().launch(name, image=secret)
            attack = MemoryScrapingAttack(session.attacker_shell, profiles)
            report = attack.execute(name, terminate_victim=victim.terminate)
            assert report.identification.best_model == name
            assert report.reconstruction.image.pixel_match_rate(secret) == 1.0

    def test_victim_with_multiple_inferences(self):
        """Only the last input is recoverable — the buffer is reused."""
        session = BoardSession.boot(input_hw=INPUT_HW)
        profiles = session.profile(["resnet50_pt"])
        first = Image.test_pattern(INPUT_HW, INPUT_HW, seed=1)
        last = Image.test_pattern(INPUT_HW, INPUT_HW, seed=2)
        victim = session.victim_application().launch("resnet50_pt", image=first)
        victim.infer(last)
        attack = MemoryScrapingAttack(session.attacker_shell, profiles)
        report = attack.execute("resnet50_pt", terminate_victim=victim.terminate)
        recovered = report.reconstruction.image
        assert recovered.pixel_match_rate(last) == 1.0
        assert recovered.pixel_match_rate(first) < 1.0

    def test_profiles_serialized_between_sessions(self, tmp_path):
        """The adversary's notebook survives across boards."""
        from repro.attack.profiling import ProfileStore

        reference = BoardSession.boot(input_hw=INPUT_HW)
        profiles = reference.profile(["resnet50_pt", "squeezenet_pt"])
        notebook = tmp_path / "profiles.json"
        notebook.write_text(profiles.to_json())

        target = BoardSession.boot(input_hw=INPUT_HW)
        loaded = ProfileStore.from_json(notebook.read_text())
        secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=9)
        victim = target.victim_application().launch("resnet50_pt", image=secret)
        attack = MemoryScrapingAttack(target.attacker_shell, loaded)
        report = attack.execute("resnet50_pt", terminate_victim=victim.terminate)
        assert report.reconstruction.image.pixel_match_rate(secret) == 1.0


class TestDefenseMatrix:
    """Which single defense kills which step (paper §VI discussion)."""

    @pytest.mark.parametrize(
        "config_kwargs, expected_leak",
        [
            (dict(), True),
            (dict(procfs_world_readable=False), False),
            (dict(pagemap_world_readable=False), False),
            (dict(devmem_unrestricted=False), False),
        ],
    )
    def test_single_knob_outcomes(self, config_kwargs, expected_leak):
        from repro.evaluation.scenarios import attack_under_config

        outcome = attack_under_config(
            KernelConfig(**config_kwargs), str(config_kwargs), input_hw=INPUT_HW
        )
        assert outcome.attack_succeeded == expected_leak

    def test_physical_aslr_alone_does_not_stop_the_paper_attack(self):
        """Pagemap-assisted translation defeats physical randomization."""
        from repro.petalinux.aslr import LayoutRandomization
        from repro.evaluation.scenarios import attack_under_config

        outcome = attack_under_config(
            KernelConfig(randomization=LayoutRandomization(physical=True, seed=3)),
            "physical-aslr",
            input_hw=INPUT_HW,
        )
        assert outcome.attack_succeeded

    def test_virtual_aslr_alone_does_not_stop_the_paper_attack(self):
        """maps leaks the slid heap base, so the offset math still works."""
        from repro.petalinux.aslr import LayoutRandomization
        from repro.evaluation.scenarios import attack_under_config

        outcome = attack_under_config(
            KernelConfig(randomization=LayoutRandomization(virtual=True, seed=3)),
            "virtual-aslr",
            input_hw=INPUT_HW,
        )
        assert outcome.attack_succeeded
