"""Unit tests for the bit-exact Linux pagemap encoding."""

import pytest

from repro.mmu.pagemap import (
    ENTRY_SIZE,
    PM_FILE_BIT,
    PM_PRESENT_BIT,
    PM_SWAP_BIT,
    PagemapEntry,
    absent_entry,
    decode_entry,
    encode_entry,
    entry_from_bytes,
    entry_to_bytes,
)


class TestEntryValidation:
    def test_pfn_must_fit_55_bits(self):
        with pytest.raises(ValueError):
            PagemapEntry(present=True, pfn=1 << 55)

    def test_negative_pfn_rejected(self):
        with pytest.raises(ValueError):
            PagemapEntry(present=True, pfn=-1)

    def test_present_and_swapped_exclusive(self):
        with pytest.raises(ValueError):
            PagemapEntry(present=True, pfn=1, swapped=True)


class TestEncode:
    def test_present_sets_bit_63(self):
        value = encode_entry(PagemapEntry(present=True, pfn=0x60025))
        assert value >> PM_PRESENT_BIT == 1

    def test_pfn_in_low_bits(self):
        value = encode_entry(PagemapEntry(present=True, pfn=0x60025))
        assert value & ((1 << 55) - 1) == 0x60025

    def test_absent_encodes_to_zero(self):
        assert encode_entry(absent_entry()) == 0

    def test_swap_bit(self):
        value = encode_entry(PagemapEntry(present=False, pfn=0, swapped=True))
        assert value >> PM_SWAP_BIT & 1 == 1

    def test_file_bit(self):
        value = encode_entry(PagemapEntry(present=True, pfn=1, file_page=True))
        assert value >> PM_FILE_BIT & 1 == 1


class TestDecode:
    def test_roundtrip_full_entry(self):
        entry = PagemapEntry(
            present=True, pfn=0x7FFFF, file_page=True, soft_dirty=True,
            exclusive=True,
        )
        assert decode_entry(encode_entry(entry)) == entry

    def test_pfn_hidden_for_absent_pages(self):
        # A non-present entry with stale PFN bits decodes as pfn 0,
        # matching the kernel's PFN hiding.
        assert decode_entry(0x60025).pfn == 0

    def test_non_u64_rejected(self):
        with pytest.raises(ValueError):
            decode_entry(1 << 64)
        with pytest.raises(ValueError):
            decode_entry(-1)

    def test_paper_attack_parsing(self):
        """The exact arithmetic of the paper's virtual_to_physical tool."""
        value = encode_entry(PagemapEntry(present=True, pfn=0x60025))
        # attacker side: mask PFN, shift, add page offset
        pfn = value & ((1 << 55) - 1)
        physical = (pfn << 12) | 0x123
        assert physical == 0x60025123


class TestWireFormat:
    def test_entry_is_8_bytes_little_endian(self):
        entry = PagemapEntry(present=True, pfn=1)
        wire = entry_to_bytes(entry)
        assert len(wire) == ENTRY_SIZE
        assert wire[0] == 1
        assert wire[7] == 0x80  # present bit in the top byte

    def test_bytes_roundtrip(self):
        entry = PagemapEntry(present=True, pfn=0x12345, exclusive=True)
        assert entry_from_bytes(entry_to_bytes(entry)) == entry

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            entry_from_bytes(b"\x00" * 7)
