"""Unit tests for board specs and the SoC bus routing."""

import pytest

from repro.errors import BusError
from repro.hw.board import BOARDS, ZCU102, ZCU104, BoardSpec, board_by_name
from repro.hw.dram import PAGE_SIZE
from repro.hw.soc import ZynqMpSoC


class TestBoards:
    def test_zcu104_matches_paper_description(self):
        assert ZCU104.apu == "ARM Cortex-A53"
        assert ZCU104.apu_cores == 4
        assert ZCU104.gpu == "Mali-400 MP2"
        assert ZCU104.process_node == "16nm FinFET+"
        assert ZCU104.dram_size == 2 * 1024**3

    def test_zcu102_is_the_generalizability_board(self):
        assert ZCU102.name == "ZCU102"
        assert ZCU102.family == ZCU104.family

    def test_lookup_by_name_case_insensitive(self):
        assert board_by_name("zcu104") is ZCU104

    def test_unknown_board_rejected(self):
        with pytest.raises(ValueError):
            board_by_name("VCK190")

    def test_describe_mentions_key_components(self):
        text = ZCU104.describe()
        assert "Cortex-A53" in text
        assert "Mali-400" in text

    def test_registry_complete(self):
        assert set(BOARDS) == {"ZCU104", "ZCU102"}

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            BoardSpec(
                name="X", family="F", dram_size=0, apu="A", apu_cores=4,
                rpu="R", gpu="G", process_node="16nm",
            )


class TestSocRouting:
    def test_dram_read_write_through_bus(self):
        soc = ZynqMpSoC()
        soc.write_physical(0x6000_0000, b"payload")
        assert soc.read_physical(0x6000_0000, 7) == b"payload"

    def test_word_access(self):
        soc = ZynqMpSoC()
        soc.write_word(0x6000_0100, 0xDEADBEEF)
        assert soc.read_word(0x6000_0100) == 0xDEADBEEF

    def test_ocm_is_separate_from_dram(self):
        soc = ZynqMpSoC()
        soc.write_physical(0xFFFC_0000, b"ocm")
        assert soc.read_physical(0xFFFC_0000, 3) == b"ocm"
        assert soc.read_physical(0x0, 3) == b"\x00\x00\x00"

    def test_unbacked_region_faults(self):
        soc = ZynqMpSoC()
        with pytest.raises(BusError):
            soc.read_physical(0x8000_0000, 4)  # PL window

    def test_unmapped_hole_faults(self):
        soc = ZynqMpSoC()
        with pytest.raises(BusError):
            soc.read_physical(0xF000_0000, 4)

    def test_frame_to_physical_identity_in_ddr_low(self):
        soc = ZynqMpSoC()
        assert soc.dram_frame_to_physical(0x60025) == 0x60025000

    def test_physical_to_frame_roundtrip(self):
        soc = ZynqMpSoC()
        for frame in (0, 1, 0x60000, 0x7FFFF):
            assert soc.physical_to_dram_frame(soc.dram_frame_to_physical(frame)) == frame

    def test_ddr_high_routing_on_4gib_board(self):
        soc = ZynqMpSoC(board=ZCU102)
        high_frame = (2 * 1024**3) // PAGE_SIZE  # first frame past DDR_LOW
        physical = soc.dram_frame_to_physical(high_frame)
        assert physical == 0x8_0000_0000
        soc.write_physical(physical, b"high")
        assert soc.read_physical(physical, 4) == b"high"
        assert soc.physical_to_dram_frame(physical) == high_frame

    def test_ocm_address_is_not_a_dram_frame(self):
        soc = ZynqMpSoC()
        with pytest.raises(BusError):
            soc.physical_to_dram_frame(0xFFFC_0000)

    def test_describe_includes_board_and_map(self):
        text = ZynqMpSoC().describe()
        assert "ZCU104" in text
        assert "DDR_LOW" in text
