"""Unit tests for shells, users and terminals."""

import pytest

from repro.hw.soc import ZynqMpSoC
from repro.petalinux.kernel import PetaLinuxKernel
from repro.petalinux.shell import Shell
from repro.petalinux.users import ROOT, Terminal, User, default_terminals


@pytest.fixture
def kernel() -> PetaLinuxKernel:
    return PetaLinuxKernel(ZynqMpSoC())


@pytest.fixture
def shells(kernel) -> tuple[Shell, Shell]:
    attacker_terminal, victim_terminal = default_terminals()
    return Shell(kernel, attacker_terminal), Shell(kernel, victim_terminal)


class TestUsers:
    def test_root_is_root(self):
        assert ROOT.is_root
        assert not User("bob", 1000).is_root

    def test_negative_uid_rejected(self):
        with pytest.raises(ValueError):
            User("bad", -1)

    def test_default_terminals_are_two_different_users(self):
        attacker_terminal, victim_terminal = default_terminals()
        assert attacker_terminal.user.uid != victim_terminal.user.uid
        assert attacker_terminal.name != victim_terminal.name

    def test_empty_terminal_name_rejected(self):
        with pytest.raises(ValueError):
            Terminal("", ROOT)


class TestPsEf:
    def test_header_columns(self, shells):
        attacker, _ = shells
        header = attacker.ps_ef().splitlines()[0]
        for column in ("UID", "PID", "PPID", "STIME", "TTY", "TIME", "CMD"):
            assert column in header

    def test_kernel_threads_shown_with_question_mark_tty(self, shells):
        attacker, _ = shells
        kworker_row = next(
            row for row in attacker.ps_rows() if "kworker" in row.cmd
        )
        assert kworker_row.tty == "?"

    def test_other_users_processes_visible(self, shells):
        attacker, victim = shells
        process = victim.run(["./resnet50_pt", "model.xmodel", "img.jpg"])
        rows = attacker.ps_rows()
        assert any(row.pid == process.pid for row in rows)

    def test_cmdline_arguments_visible_cross_user(self, shells):
        attacker, victim = shells
        victim.run(["./resnet50_pt", "/usr/share/.../resnet50_pt.xmodel"])
        assert "resnet50_pt.xmodel" in attacker.ps_ef()

    def test_rows_sorted_by_pid(self, shells):
        attacker, victim = shells
        victim.run(["./b"])
        victim.run(["./a"])
        pids = [row.pid for row in attacker.ps_rows()]
        assert pids == sorted(pids)

    def test_time_column_format(self, shells):
        attacker, _ = shells
        attacker.kernel.tick(3661)
        row = next(row for row in attacker.ps_rows() if row.pid == 1)
        assert row.time.count(":") == 2


class TestPgrep:
    def test_finds_matching_pid(self, shells):
        attacker, victim = shells
        process = victim.run(["./resnet50_pt", "x"])
        assert attacker.pgrep("resnet50") == [process.pid]

    def test_empty_for_no_match(self, shells):
        attacker, _ = shells
        assert attacker.pgrep("nonexistent_program") == []


class TestRunAndTools:
    def test_run_spawns_under_shell_user_and_tty(self, shells):
        _, victim = shells
        process = victim.run(["./app"])
        assert process.user == victim.user
        assert process.tty_name() == victim.terminal.name

    def test_run_maps_drm_node_by_default(self, shells):
        _, victim = shells
        process = victim.run(["./app"])
        assert process.address_space.vma_by_name("/dev/dri/renderD128") is not None

    def test_cat_maps_shows_heap(self, shells):
        attacker, victim = shells
        process = victim.run(["./app"])
        assert "[heap]" in attacker.cat_maps(process.pid)

    def test_devmem_command_renders_hex(self, shells):
        attacker, _ = shells
        attacker.kernel.soc.write_word(0x6180_0000, 0xDEADBEEF)
        assert attacker.devmem(0x6180_0000) == "0xDEADBEEF"

    def test_grep_filters_lines(self, shells):
        attacker, _ = shells
        text = "alpha\nbeta resnet50 gamma\ndelta"
        assert attacker.grep("resnet50", text) == ["beta resnet50 gamma"]

    def test_user_property(self, shells):
        attacker, victim = shells
        assert attacker.user.name == "attacker"
        assert victim.user.name == "victim"
