"""Unit tests for the sanitizer policies and layout randomization."""

import pytest

from repro.hw.dram import PAGE_SIZE, DramDevice
from repro.petalinux.aslr import LayoutRandomization
from repro.petalinux.sanitizer import SanitizePolicy, Sanitizer


@pytest.fixture
def dram() -> DramDevice:
    device = DramDevice(capacity=64 * PAGE_SIZE)
    for page in range(8):
        device.write(page * PAGE_SIZE, b"RESIDUE!" * 8)
    return device


class TestPolicyNone:
    def test_on_free_leaves_residue(self, dram):
        sanitizer = Sanitizer(dram, policy=SanitizePolicy.NONE)
        sanitizer.on_free(list(range(8)))
        assert dram.read(0, 8) == b"RESIDUE!"

    def test_tick_is_noop(self, dram):
        sanitizer = Sanitizer(dram, policy=SanitizePolicy.NONE)
        sanitizer.on_free([0])
        assert sanitizer.tick() == 0


class TestZeroOnFree:
    def test_scrubs_immediately(self, dram):
        sanitizer = Sanitizer(dram, policy=SanitizePolicy.ZERO_ON_FREE)
        sanitizer.on_free([0, 1])
        assert dram.read(0, PAGE_SIZE) == b"\x00" * PAGE_SIZE
        assert dram.read(PAGE_SIZE, PAGE_SIZE) == b"\x00" * PAGE_SIZE

    def test_untouched_pages_keep_data(self, dram):
        sanitizer = Sanitizer(dram, policy=SanitizePolicy.ZERO_ON_FREE)
        sanitizer.on_free([0])
        assert dram.read(PAGE_SIZE, 8) == b"RESIDUE!"

    def test_custom_pattern(self, dram):
        sanitizer = Sanitizer(
            dram, policy=SanitizePolicy.ZERO_ON_FREE, pattern=0xA5
        )
        sanitizer.on_free([0])
        assert dram.read(0, 4) == b"\xa5" * 4

    def test_stats(self, dram):
        sanitizer = Sanitizer(dram, policy=SanitizePolicy.ZERO_ON_FREE)
        sanitizer.on_free([0, 1, 2])
        assert sanitizer.stats.frames_scrubbed_sync == 3


class TestScrubPool:
    def test_frames_queue_until_ticks(self, dram):
        sanitizer = Sanitizer(
            dram, policy=SanitizePolicy.SCRUB_POOL, scrub_rate_per_tick=2
        )
        sanitizer.on_free([0, 1, 2, 3])
        assert sanitizer.pending == 4
        assert dram.read(0, 8) == b"RESIDUE!"  # window of vulnerability

    def test_tick_scrubs_at_rate(self, dram):
        sanitizer = Sanitizer(
            dram, policy=SanitizePolicy.SCRUB_POOL, scrub_rate_per_tick=2
        )
        sanitizer.on_free([0, 1, 2, 3])
        assert sanitizer.tick() == 2
        assert sanitizer.pending == 2
        assert dram.read(0, 8) == b"\x00" * 8
        assert dram.read(2 * PAGE_SIZE, 8) == b"RESIDUE!"

    def test_drain_clears_queue(self, dram):
        sanitizer = Sanitizer(
            dram, policy=SanitizePolicy.SCRUB_POOL, scrub_rate_per_tick=1
        )
        sanitizer.on_free(list(range(8)))
        assert sanitizer.drain() == 8
        assert sanitizer.pending == 0
        assert dram.read(7 * PAGE_SIZE, 8) == b"\x00" * 8

    def test_max_queue_depth_recorded(self, dram):
        sanitizer = Sanitizer(dram, policy=SanitizePolicy.SCRUB_POOL)
        sanitizer.on_free([0, 1])
        sanitizer.on_free([2, 3, 4])
        assert sanitizer.stats.max_queue_depth == 5


class TestLayoutRandomization:
    def test_off_means_zero_slide(self):
        randomization = LayoutRandomization()
        assert randomization.heap_slide(1391) == 0

    def test_virtual_slide_is_page_aligned(self):
        randomization = LayoutRandomization(virtual=True, seed=1)
        slide = randomization.heap_slide(1391)
        assert slide % PAGE_SIZE == 0

    def test_slide_deterministic_per_pid_and_seed(self):
        randomization = LayoutRandomization(virtual=True, seed=1)
        assert randomization.heap_slide(1391) == randomization.heap_slide(1391)

    def test_slide_varies_across_pids(self):
        randomization = LayoutRandomization(virtual=True, seed=1)
        slides = {randomization.heap_slide(pid) for pid in range(100, 140)}
        assert len(slides) > 30

    def test_slide_varies_across_seeds(self):
        first = LayoutRandomization(virtual=True, seed=1)
        second = LayoutRandomization(virtual=True, seed=2)
        assert first.heap_slide(1391) != second.heap_slide(1391)

    def test_slide_bounded_by_entropy(self):
        randomization = LayoutRandomization(
            virtual=True, seed=1, virtual_entropy_pages=16
        )
        for pid in range(50):
            assert randomization.heap_slide(pid) < 16 * PAGE_SIZE

    def test_describe(self):
        text = LayoutRandomization(physical=True).describe()
        assert "physical ASLR: on" in text
        assert "virtual ASLR: off" in text
