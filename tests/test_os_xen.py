"""Tests for the Xen hypervisor layer and domain confinement."""

import pytest

from repro.errors import PermissionDeniedError
from repro.evaluation.scenarios import BoardSession
from repro.petalinux.kernel import KernelConfig
from repro.petalinux.users import ROOT, User
from repro.petalinux.xen import XenDeployment, XenDomain, two_guest_deployment

ATTACKER = User("attacker", 1001)
VICTIM = User("victim", 1002)


class TestXenDomain:
    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            XenDomain("d", frozenset({1}), 10, 10)

    def test_ownership_queries(self):
        domain = XenDomain("d", frozenset({1001}), 0x100, 0x200)
        assert domain.owns_user(ATTACKER)
        assert not domain.owns_user(VICTIM)
        assert domain.owns_frame(0x100)
        assert domain.owns_frame(0x1FF)
        assert not domain.owns_frame(0x200)


class TestXenDeployment:
    def test_overlapping_domains_rejected(self):
        with pytest.raises(ValueError):
            XenDeployment(
                domains=[
                    XenDomain("a", frozenset({1}), 0x100, 0x300),
                    XenDomain("b", frozenset({2}), 0x200, 0x400),
                ]
            )

    def test_lookup_by_user_and_frame(self):
        deployment = two_guest_deployment()
        assert deployment.domain_of_user(ATTACKER).name == "domU-attacker"
        assert deployment.domain_of_user(VICTIM).name == "domU-victim"
        assert deployment.domain_of_user(ROOT) is None
        assert deployment.domain_of_frame(0x60000).name == "domU-attacker"
        assert deployment.domain_of_frame(0x68000).name == "domU-victim"

    def test_passthrough_enforces_nothing(self):
        """The PetaLinux user-default: Xen present, /dev/mem wide open."""
        deployment = two_guest_deployment(dev_mem_passthrough=True)
        deployment.check_physical_access(ATTACKER, 0x68000)  # victim frame

    def test_confined_blocks_cross_domain(self):
        deployment = two_guest_deployment(dev_mem_passthrough=False)
        deployment.check_physical_access(ATTACKER, 0x60000)  # own frame
        with pytest.raises(PermissionDeniedError):
            deployment.check_physical_access(ATTACKER, 0x68000)

    def test_confined_root_is_dom0(self):
        deployment = two_guest_deployment(dev_mem_passthrough=False)
        deployment.check_physical_access(ROOT, 0x68000)

    def test_confined_domainless_user_blocked(self):
        deployment = two_guest_deployment(dev_mem_passthrough=False)
        with pytest.raises(PermissionDeniedError):
            deployment.check_physical_access(User("nobody", 1234), 0x60000)

    def test_describe_mentions_mode(self):
        assert "passthrough" in two_guest_deployment().describe()
        assert "confined" in two_guest_deployment(
            dev_mem_passthrough=False
        ).describe()


class TestXenKernelIntegration:
    def _session(self, passthrough: bool) -> BoardSession:
        return BoardSession.boot(
            config=KernelConfig(
                xen=two_guest_deployment(dev_mem_passthrough=passthrough)
            ),
            input_hw=32,
        )

    def test_domain_processes_allocate_in_their_window(self):
        session = self._session(passthrough=True)
        run = session.victim_application().launch("resnet50_pt", infer=False)
        frames = run.process.address_space.page_table.frames()
        deployment = session.kernel.config.xen
        victim_domain = deployment.domain_of_user(session.victim_shell.user)
        assert all(victim_domain.owns_frame(frame) for frame in frames)

    def test_attack_succeeds_under_passthrough_xen(self):
        """The paper's finding: Xen being present changed nothing."""
        from repro.evaluation.scenarios import run_paper_attack

        session = self._session(passthrough=True)
        outcome = run_paper_attack(session)
        assert outcome.model_identified_correctly
        assert outcome.image_recovered_exactly

    def test_confined_xen_blocks_cross_domain_devmem(self):
        session = self._session(passthrough=False)
        run = session.victim_application().launch("resnet50_pt", infer=False)
        victim_frame = run.process.address_space.page_table.frames()[0]
        physical = session.soc.dram_frame_to_physical(victim_frame)
        with pytest.raises(PermissionDeniedError):
            session.attacker_shell.devmem_tool.read(
                physical, caller=session.attacker_shell.user
            )

    def test_confined_xen_still_allows_own_domain_reads(self):
        session = self._session(passthrough=False)
        own = session.kernel.spawn(
            ["./own"], user=session.attacker_shell.user
        )
        own_frame = own.address_space.page_table.frames()[0]
        physical = session.soc.dram_frame_to_physical(own_frame)
        value = session.attacker_shell.devmem_tool.read(
            physical, caller=session.attacker_shell.user
        )
        assert isinstance(value, int)

    def test_confined_xen_defeats_extraction_step(self):
        """Full pipeline dies at step 3 under proper confinement."""
        from repro.attack.pipeline import MemoryScrapingAttack
        from repro.errors import ExtractionError

        reference = BoardSession.boot(input_hw=32)
        profiles = reference.profile(["resnet50_pt"])

        session = self._session(passthrough=False)
        run = session.victim_application().launch("resnet50_pt")
        attack = MemoryScrapingAttack(session.attacker_shell, profiles)
        attack.observe_victim("resnet50_pt")
        attack.harvest_addresses()
        run.terminate()
        with pytest.raises(ExtractionError):
            attack.extract()

    def test_frames_return_to_domain_allocator(self):
        session = self._session(passthrough=True)
        deployment = session.kernel.config.xen
        victim_domain = deployment.domain_of_user(session.victim_shell.user)
        allocator = session.kernel._domain_allocators[victim_domain.name]
        free_before = allocator.free_frames()
        run = session.victim_application().launch("resnet50_pt", infer=False)
        run.terminate()
        assert allocator.free_frames() == free_before
