"""Fault-injection harness for the distributed campaign fabric.

Not a test module (no ``test_`` prefix — pytest never collects it):
this is the reusable chaos toolkit ``tests/test_fabric.py`` and any
future distributed drill builds on.  It scripts the failure modes a
real fleet produces — worker kills mid-wave, heartbeats that stop,
duplicate claims, replayed outcome streams, torn byte streams —
against a *real* in-process :class:`FabricCoordinator` with an
injected :class:`ManualClock`, so every drill is deterministic and
sleeps for nothing.

The core loop every drill shares:

1. compute the single-host reference report
   (:func:`reference_report_bytes` — an uninterrupted
   :class:`CampaignRuntime` run);
2. serve the same spec through a coordinator and throw
   :class:`ChaosWorker` s with :class:`FaultPlan` s at it;
3. :func:`drain` the campaign with well-behaved workers, advancing the
   manual clock past the lease TTL between rounds so abandoned leases
   expire and re-issue;
4. assert the fabric's ``report.json`` is **byte-identical** to the
   reference — the contract no crash choreography may bend.

Transport-level chaos rides the same loop through
:class:`~repro.campaign.runtime.netchaos.FlakyProxy` (re-exported here
with :class:`~repro.campaign.runtime.netchaos.ChaosScript`):
:func:`drain_through_proxy` drains with self-healing workers dialing
the proxy instead of the coordinator, and :func:`restart_coordinator`
kills a live coordinator and resumes the same run directory on the
same port — the coordinator-restart drill's core move.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable

from repro.campaign import (
    CampaignRuntime,
    CampaignSpec,
    prepare_offline_cached,
)
from repro.campaign.runtime.fabric import (
    FabricClient,
    FabricCoordinator,
    FabricWorker,
    ManualClock,
)
from repro.campaign.runtime.netchaos import ChaosScript, FlakyProxy
from repro.errors import FabricError, RetryExhaustedError
from repro.utils.resilience import RetryPolicy

__all__ = [
    "ChaosScript",
    "ChaosWorker",
    "FAST_RETRY",
    "FaultPlan",
    "FlakyProxy",
    "build_coordinator",
    "drain",
    "drain_through_proxy",
    "no_sleep",
    "reference_report_bytes",
    "restart_coordinator",
    "run_chaos_drill",
]

FAST_RETRY = RetryPolicy(
    max_attempts=8, base_delay=0.01, max_delay=0.05, jitter=0.0
)
"""Retry policy for drills: real retries, negligible wall-clock."""


def no_sleep(seconds: float) -> None:
    """A sleep that doesn't — drills drive time with manual clocks."""


@dataclass
class FaultPlan:
    """What goes wrong for one worker, and exactly when.

    All faults default off; a default :class:`FaultPlan` is a
    well-behaved worker.

    - *die_after_waves* — simulated worker death: stop everything
      after shipping N waves of the current board (``0`` dies
      mid-wave, after the wave's dumps uploaded but before its
      outcomes ship); the lease is left to expire.
    - *tear_stream_before_wave* — before shipping that wave index,
      write a truncated junk frame onto the wire and die: the
      coordinator sees a torn stream and drops the connection.
    - *duplicate_waves* — ship every wave twice (an at-least-once
      sender); the second copy must be rejected as duplicates.
    - *replay_on_reconnect* — after the last wave, open a *second*
      connection and re-send every wave already shipped (a worker
      that reconnected and replayed its send log), then complete the
      board on the original connection.
    - *abandon_before_complete* — ship every wave but never send
      ``board_complete`` and stop (a worker that partitioned at the
      last instant); the lease expires and the board re-runs.
    """

    die_after_waves: int | None = None
    tear_stream_before_wave: int | None = None
    duplicate_waves: bool = False
    replay_on_reconnect: bool = False
    abandon_before_complete: bool = False


class ChaosWorker(FabricWorker):
    """A :class:`FabricWorker` that executes a :class:`FaultPlan`.

    Heartbeats are disabled and ``poll_interval=None`` by default:
    drills drive time with the coordinator's :class:`ManualClock`, so
    a chaos worker drains what it can claim and returns.
    """

    def __init__(self, host: str, port: int, *, plan: FaultPlan, **kwargs):
        kwargs.setdefault("heartbeat", False)
        kwargs.setdefault("poll_interval", None)
        super().__init__(
            host, port, die_after_waves=plan.die_after_waves, **kwargs
        )
        self.plan = plan
        self.sent_log: list[dict] = []

    def _before_wave_send(self, client, token, board, wave, outcomes):
        if (
            self.plan.tear_stream_before_wave is not None
            and wave >= self.plan.tear_stream_before_wave
        ):
            # A frame that dies mid-line: valid JSON prefix, no
            # newline, then the connection drops with the worker.
            client.send_raw(b'{"op": "wave", "lease": "b0e1", "outco')
            client.close()
            raise _death()
        payload = {
            "lease": token,
            "wave": wave,
            "outcomes": [asdict(outcome) for outcome in outcomes],
        }
        self.sent_log.append(payload)
        if self.plan.duplicate_waves:
            # First copy ships here; the worker's own send right after
            # becomes the duplicate the coordinator must reject.
            client.request("wave", **payload)

    def _before_board_complete(self, client, token, board):
        if self.plan.replay_on_reconnect:
            with FabricClient(self._host, self._port) as second:
                for payload in self.sent_log:
                    response = second.request("wave", **payload)
                    assert response["accepted"] == 0, (
                        "a replayed wave must never re-journal outcomes"
                    )
        if self.plan.abandon_before_complete:
            raise _death()


def _death():
    from repro.campaign.runtime.fabric import _SimulatedWorkerDeath

    return _SimulatedWorkerDeath()


def reference_report_bytes(spec: CampaignSpec, workdir: Path) -> bytes:
    """The single-host, uninterrupted ``report.json`` for *spec*."""
    run_dir = Path(workdir) / "reference"
    runtime = CampaignRuntime(
        spec,
        run_dir,
        executor="inprocess",
        prep=prepare_offline_cached(spec),
    )
    runtime.run()
    return run_dir.joinpath("report.json").read_bytes()


def build_coordinator(
    spec: CampaignSpec,
    workdir: Path,
    *,
    lease_ttl: float = 30.0,
    defense_profile: str | None = None,
) -> tuple[FabricCoordinator, ManualClock]:
    """A serving coordinator on an ephemeral port, clock injected."""
    clock = ManualClock()
    coordinator = FabricCoordinator(
        spec,
        Path(workdir) / "fabric",
        lease_ttl=lease_ttl,
        clock=clock,
        prep=prepare_offline_cached(spec),
        defense_profile=defense_profile,
    )
    coordinator.serve()
    return coordinator, clock


def drain(
    coordinator: FabricCoordinator,
    clock: ManualClock,
    *,
    lease_ttl: float = 30.0,
    max_rounds: int = 10,
    concurrent: int = 1,
) -> list[dict]:
    """Finish a campaign with well-behaved workers, however wounded.

    Each round runs *concurrent* fresh workers (threads — real claim
    racing) until no lease is claimable, then advances the manual
    clock past the lease TTL so anything a dead worker still holds
    expires and re-issues.  Raises if the campaign won't converge in
    *max_rounds* — a drill that needs more has found a real bug.
    """
    host, port = coordinator.address
    stats: list[dict] = []
    rounds = 0
    while not coordinator.done:
        if rounds >= max_rounds:
            raise AssertionError(
                f"campaign failed to drain in {max_rounds} rounds: "
                f"{coordinator.status()}"
            )
        workers = [
            FabricWorker(
                host,
                port,
                worker_id=f"drain-r{rounds}w{index}",
                poll_interval=None,
                heartbeat=False,
            )
            for index in range(concurrent)
        ]
        results: list[dict] = [{} for _ in workers]

        def run(index: int, worker: FabricWorker) -> None:
            results[index] = worker.run()

        threads = [
            threading.Thread(target=run, args=(index, worker))
            for index, worker in enumerate(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats.extend(results)
        if not coordinator.done:
            clock.advance(lease_ttl + 1.0)
        rounds += 1
    return stats


def run_chaos_drill(
    spec: CampaignSpec,
    workdir: Path,
    plans: list[FaultPlan],
    *,
    lease_ttl: float = 30.0,
    drain_concurrent: int = 1,
) -> tuple[bytes, bytes, dict]:
    """One full drill: faulty workers, then drain, then compare.

    Runs one :class:`ChaosWorker` per plan (sequentially — each gets
    a chance to claim and corrupt), advances the clock between them so
    abandoned leases re-issue, drains with clean workers, and returns
    ``(fabric_report_bytes, reference_report_bytes, status)``.
    """
    workdir = Path(workdir)
    reference = reference_report_bytes(spec, workdir)
    coordinator, clock = build_coordinator(
        spec, workdir, lease_ttl=lease_ttl
    )
    try:
        host, port = coordinator.address
        for index, plan in enumerate(plans):
            ChaosWorker(
                host, port, plan=plan, worker_id=f"chaos{index}"
            ).run()
            if not coordinator.done:
                clock.advance(lease_ttl + 1.0)
        drain(
            coordinator,
            clock,
            lease_ttl=lease_ttl,
            concurrent=drain_concurrent,
        )
        coordinator.run_until_complete(timeout=60)
        status = coordinator.status()
        fabric = coordinator.run_dir.report_path.read_bytes()
    finally:
        coordinator.close()
    return fabric, reference, status


def restart_coordinator(
    coordinator: FabricCoordinator,
    *,
    lease_ttl: float = 30.0,
    clock: ManualClock | None = None,
) -> tuple[FabricCoordinator, ManualClock]:
    """Kill a live coordinator and resume its run on the *same* port.

    The restart drill in one move: captures the bound address, closes
    the server (every worker's next request now fails at the socket),
    reopens the same run directory via :meth:`FabricCoordinator.resume`
    with a fresh :class:`ManualClock` (restarts forget wall-clock
    state — that's the point), and serves on the identical
    ``host:port`` so already-configured workers and proxies reconnect
    without redirection.  ``leases.json`` epoch watermarks guarantee
    the resumed lease table never re-mints a fencing token.
    """
    host, port = coordinator.address
    coordinator.close()
    clock = clock or ManualClock()
    resumed = FabricCoordinator.resume(
        coordinator.run_dir.root,
        lease_ttl=lease_ttl,
        clock=clock,
        prep=prepare_offline_cached(coordinator.spec),
    )
    resumed.serve(host, port)
    return resumed, clock


def drain_through_proxy(
    coordinator: FabricCoordinator,
    clock: ManualClock,
    proxy: FlakyProxy,
    *,
    lease_ttl: float = 30.0,
    max_rounds: int = 12,
    concurrent: int = 1,
    retry_policy: RetryPolicy = FAST_RETRY,
    on_round: (
        "Callable[[int], FabricCoordinator | None] | None"
    ) = None,
) -> list[dict]:
    """:func:`drain`, but every worker dials the proxy's flaky wire.

    Workers are self-healing (``retry_policy`` retries, ``no_sleep``
    so backoff costs nothing) and a worker whose budget runs out mid-
    round is recorded, not fatal — its lease expires on the manual
    clock and the next round picks the board up.  *on_round* fires
    before each round with the round index; a drill that kills and
    resumes the coordinator mid-campaign returns the replacement from
    its hook (share the :class:`ManualClock` via
    ``restart_coordinator(..., clock=clock)`` so lease time stays
    continuous) and the drain tracks it.
    """
    stats: list[dict] = []
    rounds = 0
    while not coordinator.done:
        if rounds >= max_rounds:
            raise AssertionError(
                f"campaign failed to drain through the proxy in "
                f"{max_rounds} rounds: {coordinator.status()} "
                f"(proxy: {proxy.stats()})"
            )
        if on_round is not None:
            replacement = on_round(rounds)
            if replacement is not None:
                coordinator = replacement
        proxy_host, proxy_port = proxy.address
        workers = [
            FabricWorker(
                proxy_host,
                proxy_port,
                worker_id=f"proxy-r{rounds}w{index}",
                poll_interval=None,
                heartbeat=False,
                retry_policy=retry_policy,
                sleep=no_sleep,
            )
            for index in range(concurrent)
        ]
        results: list[dict] = [{} for _ in workers]

        def run(index: int, worker: FabricWorker) -> None:
            try:
                results[index] = worker.run()
            except (FabricError, RetryExhaustedError, OSError) as exc:
                results[index] = {"worker_error": repr(exc)}

        threads = [
            threading.Thread(target=run, args=(index, worker))
            for index, worker in enumerate(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats.extend(results)
        if not coordinator.done:
            clock.advance(lease_ttl + 1.0)
        rounds += 1
    return stats
