"""Unit tests for repro.utils.strings — the strings(1) equivalent."""

import pytest

from repro.utils.strings import (
    extract_strings,
    find_pattern_offsets,
    longest_common_token,
)


class TestExtractStrings:
    def test_finds_embedded_path(self):
        data = b"\x00\x01/usr/share/vitis_ai_library\xff\xfe"
        hits = extract_strings(data)
        assert hits[0].text == "/usr/share/vitis_ai_library"
        assert hits[0].offset == 2

    def test_minimum_length_filters(self):
        data = b"ab\x00abcd\x00"
        assert [hit.text for hit in extract_strings(data, 4)] == ["abcd"]
        assert [hit.text for hit in extract_strings(data, 2)] == ["ab", "abcd"]

    def test_run_at_end_of_data(self):
        hits = extract_strings(b"\x00tail")
        assert hits[-1].text == "tail"

    def test_whole_buffer_printable(self):
        hits = extract_strings(b"entire")
        assert len(hits) == 1
        assert hits[0].offset == 0

    def test_no_strings_in_binary(self):
        assert extract_strings(bytes(range(0, 32)) * 4) == []

    def test_tab_and_newline_break_runs(self):
        hits = extract_strings(b"abcd\nefgh")
        assert [hit.text for hit in hits] == ["abcd", "efgh"]

    def test_bad_minimum_rejected(self):
        with pytest.raises(ValueError):
            extract_strings(b"x", minimum_length=0)

    def test_empty_data(self):
        assert extract_strings(b"") == []


class TestFindPatternOffsets:
    def test_multiple_occurrences(self):
        assert find_pattern_offsets(b"abXabXab", b"ab") == [0, 3, 6]

    def test_overlapping_occurrences(self):
        assert find_pattern_offsets(b"aaaa", b"aa") == [0, 1, 2]

    def test_limit(self):
        assert find_pattern_offsets(b"aaaa", b"a", limit=2) == [0, 1]

    def test_absent(self):
        assert find_pattern_offsets(b"abc", b"zz") == []

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            find_pattern_offsets(b"abc", b"")


class TestLongestCommonToken:
    def test_picks_repeated_path_token(self):
        strings = [
            "/usr/share/vitis_ai_library/models/resnet50_pt/resnet50_pt.xmodel",
            "models/resnet50_pt",
        ]
        assert longest_common_token(strings) == "resnet50_pt"

    def test_empty_input(self):
        assert longest_common_token([]) == ""

    def test_short_tokens_ignored(self):
        assert longest_common_token(["a/b/c", "a/b"]) == ""

    def test_tie_prefers_longer(self):
        assert longest_common_token(["longertoken/short1"]) == "longertoken"
