"""Unit tests for the analysis service: the pure core, admission
control, the bounded pool, and the daemon's wire protocol."""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import threading

import pytest

from repro.campaign.runtime.executors import AnalysisPool
from repro.campaign.runtime.spool import DumpSpool
from repro.errors import QuotaExceededError
from repro.service.analysis import (
    CARVE_PRESETS,
    AnalysisConfig,
    AnalysisReport,
    DumpAnalysis,
    analyze_dump,
    mine_database,
)
from repro.service.client import AsyncServiceClient
from repro.service.daemon import AnalysisService
from repro.service.quotas import TenantLedger, TenantQuotaConfig, TokenBucket
from repro.utils.resilience import ManualClock

INPUT_HW = 32
MODELS = ("resnet50_pt", "squeezenet_pt")


@pytest.fixture(scope="module")
def database():
    return mine_database(MODELS, INPUT_HW)


@pytest.fixture(scope="module")
def resnet_dump() -> bytes:
    """One scraped resnet dump, as raw bytes."""
    from repro.attack.addressing import AddressHarvester
    from repro.attack.extraction import MemoryScraper
    from repro.evaluation.scenarios import BoardSession
    from repro.vitis.app import VictimApplication
    from repro.vitis.image import Image

    session = BoardSession.boot(input_hw=INPUT_HW)
    run = VictimApplication(session.victim_shell, input_hw=INPUT_HW).launch(
        "resnet50_pt", image=Image.test_pattern(INPUT_HW, INPUT_HW)
    )
    harvester = AddressHarvester(
        session.attacker_shell.procfs, caller=session.attacker_shell.user
    )
    harvested = harvester.harvest(run.pid)
    run.terminate()
    scraper = MemoryScraper(
        session.attacker_shell.devmem_tool, session.attacker_shell.user
    )
    return bytes(scraper.scrape(harvested).data)


class TestTokenBucket:
    def test_burst_then_exact_refill_schedule(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=10.0, capacity=20.0, clock=clock)
        assert bucket.try_take(20.0) == 0.0
        assert bucket.try_take(5.0) == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.try_take(5.0) == 0.0

    def test_oversized_request_can_never_pass(self):
        bucket = TokenBucket(rate=1.0, capacity=4.0, clock=ManualClock())
        assert bucket.try_take(5.0) == float("inf")
        # ... and took nothing while refusing.
        assert bucket.available == 4.0

    def test_refill_caps_at_capacity(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=100.0, capacity=10.0, clock=clock)
        assert bucket.try_take(10.0) == 0.0
        clock.advance(1000.0)
        assert bucket.available == 10.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=-1.0)
        bucket = TokenBucket(rate=1.0, capacity=1.0, clock=ManualClock())
        with pytest.raises(ValueError):
            bucket.try_take(-1.0)


class TestTenantLedger:
    def test_quotas_isolate_tenants(self):
        clock = ManualClock()
        ledger = TenantLedger(
            TenantQuotaConfig(jobs_per_sec=1.0, jobs_burst=1.0), clock=clock
        )
        ledger.admit_job("a")
        with pytest.raises(QuotaExceededError) as caught:
            ledger.admit_job("a")
        assert caught.value.retry_after == pytest.approx(1.0)
        # Tenant b's bucket is untouched by a's exhaustion.
        ledger.admit_job("b")

    def test_counters_record_admissions_and_rejections(self):
        clock = ManualClock()
        ledger = TenantLedger(
            TenantQuotaConfig(
                upload_bytes_per_sec=100.0, upload_burst_bytes=100.0
            ),
            clock=clock,
        )
        ledger.admit_upload("a", 80)
        with pytest.raises(QuotaExceededError):
            ledger.admit_upload("a", 80)
        counters = ledger.counters()["a"]
        assert counters["uploads_admitted"] == 1
        assert counters["upload_bytes_admitted"] == 80
        assert counters["uploads_rejected"] == 1

    def test_rejection_heals_after_the_advertised_wait(self):
        clock = ManualClock()
        ledger = TenantLedger(
            TenantQuotaConfig(
                upload_bytes_per_sec=10.0, upload_burst_bytes=50.0
            ),
            clock=clock,
        )
        ledger.admit_upload("a", 50)
        with pytest.raises(QuotaExceededError) as caught:
            ledger.admit_upload("a", 30)
        clock.advance(caught.value.retry_after)
        ledger.admit_upload("a", 30)


class TestAnalysisPool:
    def test_bounded_queue_refuses_instead_of_buffering(self):
        gate = threading.Event()
        started = threading.Event()
        done = []

        def wedge():
            started.set()
            gate.wait(5)

        with AnalysisPool(workers=1, capacity=1) as pool:
            assert pool.try_submit(wedge, lambda r, e: done.append((r, e)))
            # Wait until the worker holds the job, so the queue is
            # observably empty before the next submits.
            assert started.wait(5)
            results = [
                pool.try_submit(
                    lambda: gate.wait(5), lambda r, e: done.append((r, e))
                )
                for _ in range(3)
            ]
            # One fills the queue; the rest are explicit refusals.
            assert results == [True, False, False]
            gate.set()
            assert pool.drain(timeout=5)
        assert len(done) == 2
        assert all(error is None for _, error in done)

    def test_worker_exception_is_forwarded_not_swallowed(self):
        done = []

        def boom():
            raise RuntimeError("analysis failed")

        with AnalysisPool(workers=1, capacity=2) as pool:
            assert pool.try_submit(boom, lambda r, e: done.append((r, e)))
            assert pool.drain(timeout=5)
        ((result, error),) = done
        assert result is None
        assert isinstance(error, RuntimeError)

    def test_stats_track_accepted_and_completed(self):
        with AnalysisPool(workers=2, capacity=4) as pool:
            for _ in range(3):
                assert pool.try_submit(lambda: None, lambda r, e: None)
            assert pool.drain(timeout=5)
            stats = pool.stats()
        assert stats["accepted"] == 3
        assert stats["completed"] == 3
        assert stats["in_flight"] == 0
        assert stats["capacity"] == 4

    def test_submit_after_close_raises(self):
        pool = AnalysisPool(workers=1, capacity=1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.try_submit(lambda: None, lambda r, e: None)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            AnalysisPool(workers=0)
        with pytest.raises(ValueError):
            AnalysisPool(capacity=0)


class TestSpoolPutStats:
    def test_hit_rate_counts_dedup(self, tmp_path):
        spool = DumpSpool(tmp_path / "spool")
        assert spool.put_stats() == {
            "hits": 0,
            "misses": 0,
            "hit_rate": 0.0,
        }
        spool.put_bytes(b"residue")
        spool.put_bytes(b"residue")
        spool.put_bytes(b"other")
        stats = spool.put_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["hit_rate"] == pytest.approx(1 / 3)


class TestAnalyzeDump:
    def test_identifies_the_scraped_model(self, database, resnet_dump):
        analysis = analyze_dump(resnet_dump, AnalysisConfig(database))
        assert analysis.identified_model == "resnet50_pt"
        assert analysis.matched_tokens > 0
        assert analysis.sha256 == hashlib.sha256(resnet_dump).hexdigest()
        assert analysis.nbytes == len(resnet_dump)
        assert 0 < analysis.residue_nbytes <= analysis.nbytes
        assert analysis.region_count >= 1
        assert sum(analysis.kind_bytes.values()) == analysis.nbytes

    def test_pure_and_buffer_agnostic(self, database, resnet_dump):
        config = AnalysisConfig(database)
        assert analyze_dump(resnet_dump, config) == analyze_dump(
            memoryview(resnet_dump), config
        )

    def test_unattributable_bytes_are_a_result_not_an_error(self, database):
        analysis = analyze_dump(b"\x00" * 4096, AnalysisConfig(database))
        assert analysis.identified_model is None
        assert analysis.identification_score == 0.0
        assert analysis.residue_nbytes == 0

    def test_carve_preset_changes_granularity(self, database, resnet_dump):
        coarse = analyze_dump(
            resnet_dump,
            AnalysisConfig(database, carve=CARVE_PRESETS["coarse"]),
        )
        fine = analyze_dump(
            resnet_dump, AnalysisConfig(database, carve=CARVE_PRESETS["fine"])
        )
        assert fine.region_count >= coarse.region_count
        assert coarse.carve_preset == "coarse"

    def test_payload_round_trip(self, database, resnet_dump):
        analysis = analyze_dump(resnet_dump, AnalysisConfig(database))
        assert DumpAnalysis.from_payload(analysis.to_payload()) == analysis
        # The wire form survives JSON exactly (floats pre-rounded).
        assert (
            DumpAnalysis.from_payload(
                json.loads(json.dumps(analysis.to_payload()))
            )
            == analysis
        )


class TestAnalysisReport:
    def _analysis(self, digest: str, model: str | None = None) -> DumpAnalysis:
        return DumpAnalysis(
            sha256=digest,
            nbytes=8,
            residue_nbytes=4,
            entropy=1.0,
            printable_fraction=0.5,
            region_count=1,
            kind_bytes={"mixed": 8},
            identified_model=model,
            identification_score=0.5 if model else 0.0,
            matched_tokens=1 if model else 0,
            carve_preset="default",
        )

    def test_order_independent_and_deduplicated(self):
        rows = [self._analysis("b" * 64), self._analysis("a" * 64)]
        forward, backward = AnalysisReport(), AnalysisReport()
        for row in rows:
            forward.add(row)
        for row in reversed(rows):
            backward.add(row)
            backward.add(row)  # duplicate adds collapse
        assert forward.to_json() == backward.to_json()
        assert len(backward) == 2

    def test_render_lists_digests_and_models(self):
        report = AnalysisReport()
        report.add(self._analysis("c" * 64, model="resnet50_pt"))
        text = report.render()
        assert "c" * 16 in text
        assert "resnet50_pt" in text
        assert "1 dump(s)" in text


def _run(coro):
    return asyncio.run(coro)


class TestDaemonProtocol:
    """Wire-level behavior of one in-process daemon."""

    @pytest.fixture
    def service_factory(self, tmp_path):
        """Build (service, host, port) inside a running loop."""

        async def factory(**kwargs):
            kwargs.setdefault("workers", 1)
            service = AnalysisService(
                tmp_path / "spool", MODELS, INPUT_HW, **kwargs
            )
            host, port = await service.start()
            return service, host, port

        return factory

    def test_hello_advertises_databases_and_presets(self, service_factory):
        async def scenario():
            service, host, port = await service_factory()
            async with await AsyncServiceClient.connect(host, port) as client:
                hello = await client.request("hello")
            await service.close()
            return hello

        hello = _run(scenario())
        assert hello["ok"] is True
        assert hello["databases"] == ["default"]
        assert hello["carve_presets"] == sorted(CARVE_PRESETS)

    def test_upload_dedup_and_digest_verification(self, service_factory):
        async def scenario():
            service, host, port = await service_factory()
            async with await AsyncServiceClient.connect(host, port) as client:
                first = await client.put_dump("t", b"residue")
                second = await client.put_dump("t", b"residue")
                lied = await client.request(
                    "put_dump",
                    tenant="t",
                    sha256="0" * 64,
                    data_b64=base64.b64encode(b"residue").decode(),
                )
                garbage = await client.request(
                    "put_dump", tenant="t", data_b64="!!!not-base64!!!"
                )
            await service.close()
            return first, second, lied, garbage

        first, second, lied, garbage = _run(scenario())
        assert first["ok"] and not first["deduplicated"]
        assert second["ok"] and second["deduplicated"]
        assert lied["code"] == "digest-mismatch"
        assert garbage["code"] == "bad-request"

    def test_submit_validates_digest_database_and_preset(
        self, service_factory
    ):
        async def scenario():
            service, host, port = await service_factory()
            async with await AsyncServiceClient.connect(host, port) as client:
                upload = await client.put_dump("t", b"residue")
                unknown_digest = await client.request(
                    "submit", tenant="t", sha256="f" * 64
                )
                unknown_database = await client.request(
                    "submit",
                    tenant="t",
                    sha256=upload["sha256"],
                    database="nope",
                )
                unknown_preset = await client.request(
                    "submit",
                    tenant="t",
                    sha256=upload["sha256"],
                    carve="nope",
                )
                unknown_job = await client.request("status", job_id=99)
                bad_op = await client.request("frobnicate")
            await service.close()
            return (
                unknown_digest,
                unknown_database,
                unknown_preset,
                unknown_job,
                bad_op,
            )

        digest, db, preset, job, bad_op = _run(scenario())
        assert digest["code"] == "unknown-digest"
        assert db["code"] == "unknown-database"
        assert preset["code"] == "bad-request"
        assert job["code"] == "unknown-job"
        assert bad_op["code"] == "bad-request"

    def test_job_lifecycle_and_stats(self, service_factory, resnet_dump):
        async def scenario():
            service, host, port = await service_factory()
            async with await AsyncServiceClient.connect(host, port) as client:
                upload = await client.put_dump("t", resnet_dump)
                submitted = await client.request(
                    "submit", tenant="t", sha256=upload["sha256"]
                )
                status = await client.request(
                    "status", job_id=submitted["job_id"]
                )
                while status["state"] == "queued":
                    await asyncio.sleep(0.01)
                    status = await client.request(
                        "status", job_id=submitted["job_id"]
                    )
                stats = (await client.request("stats"))["stats"]
            service.request_drain()
            await service.drained()
            await service.close()
            return submitted, status, stats, service.report

        submitted, status, stats, report = _run(scenario())
        assert submitted["ok"] and submitted["job_id"] == 1
        assert status["state"] == "done"
        assert status["analysis"]["identified_model"] == "resnet50_pt"
        assert stats["jobs"]["accepted"] == 1
        assert stats["queue"]["capacity"] == 8
        assert stats["spool"]["misses"] == 1
        assert "t" in stats["tenants"]
        assert len(report) == 1

    def test_quota_refusals_carry_retry_after(self, service_factory):
        async def scenario():
            clock = ManualClock()
            service, host, port = await service_factory(
                quota_config=TenantQuotaConfig(
                    upload_bytes_per_sec=4.0, upload_burst_bytes=8.0
                ),
                clock=clock,
            )
            async with await AsyncServiceClient.connect(host, port) as client:
                first = await client.put_dump("t", b"12345678")
                refused = await client.put_dump("t", b"abcdefgh")
                clock.advance(refused["retry_after"])
                healed = await client.put_dump("t", b"abcdefgh")
            await service.close()
            return first, refused, healed

        first, refused, healed = _run(scenario())
        assert first["ok"]
        assert refused["code"] == "quota"
        assert refused["retry_after"] == pytest.approx(2.0)
        assert healed["ok"]

    def test_backpressure_when_the_bounded_queue_fills(
        self, service_factory
    ):
        async def scenario():
            gate = threading.Event()
            service, host, port = await service_factory(
                queue_capacity=1, worker_gate=gate
            )
            async with await AsyncServiceClient.connect(host, port) as client:
                upload = await client.put_dump("t", b"residue")
                responses = [
                    await client.request(
                        "submit", tenant="t", sha256=upload["sha256"]
                    )
                    for _ in range(4)
                ]
            gate.set()
            service.request_drain()
            await service.drained()
            await service.close()
            return responses

        responses = _run(scenario())
        codes = [r.get("code", "ok") for r in responses]
        # At most 1 in flight + 1 queued fit (the in-flight slot opens
        # only once the wedged worker dequeues, so 1 is also possible);
        # everything else must be an explicit refusal, not a buffer.
        assert 1 <= codes.count("ok") <= 2
        assert codes.count("backpressure") >= 2
        assert all(
            r["retry_after"] > 0 for r in responses if "code" in r
        )

    def test_drain_refuses_new_work_but_finishes_accepted(
        self, service_factory, resnet_dump
    ):
        async def scenario():
            gate = threading.Event()
            service, host, port = await service_factory(worker_gate=gate)
            async with await AsyncServiceClient.connect(host, port) as client:
                upload = await client.put_dump("t", resnet_dump)
                accepted = await client.request(
                    "submit", tenant="t", sha256=upload["sha256"]
                )
                service.request_drain()
                await asyncio.sleep(0)  # let the drain flag land
                refused_submit = await client.request(
                    "submit", tenant="t", sha256=upload["sha256"]
                )
                refused_upload = await client.put_dump("t", b"late")
            await service.drained()
            status_client = await AsyncServiceClient.connect(host, port)
            async with status_client:
                status = await status_client.request(
                    "status", job_id=accepted["job_id"]
                )
            await service.close()
            return refused_submit, refused_upload, status

        refused_submit, refused_upload, status = _run(scenario())
        assert refused_submit["code"] == "draining"
        assert refused_upload["code"] == "draining"
        assert status["state"] == "done"

    def test_late_subscriber_replays_the_backlog(
        self, service_factory, resnet_dump
    ):
        async def scenario():
            service, host, port = await service_factory()
            async with await AsyncServiceClient.connect(host, port) as client:
                upload = await client.put_dump("t", resnet_dump)
                submitted = await client.request(
                    "submit", tenant="t", sha256=upload["sha256"]
                )
                status = await client.request(
                    "status", job_id=submitted["job_id"]
                )
                while status["state"] == "queued":
                    await asyncio.sleep(0.01)
                    status = await client.request(
                        "status", job_id=submitted["job_id"]
                    )
                # Subscribe only after the job completed: the delta
                # must arrive as backlog, then the drain event.
                events = []
                subscriber = await AsyncServiceClient.connect(host, port)
                async with subscriber:

                    async def consume():
                        async for event in subscriber.subscribe():
                            events.append(event)

                    task = asyncio.create_task(consume())
                    await asyncio.sleep(0.05)
                    service.request_drain()
                    await service.drained()
                    await asyncio.wait_for(task, timeout=5)
            await service.close()
            return events

        events = _run(scenario())
        assert [event["event"] for event in events] == ["delta", "drained"]
        assert events[0]["analysis"]["identified_model"] == "resnet50_pt"
