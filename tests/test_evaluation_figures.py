"""Tests that every regenerated paper figure's claims hold."""

import pytest

from repro.evaluation.figures import (
    FigureArtifact,
    generate_all_figures,
    render_figure_report,
)

EXPECTED_FIGURES = (
    "fig04", "fig05", "fig06", "fig07", "fig08",
    "fig09", "fig10", "fig11", "fig12",
)


@pytest.fixture(scope="module")
def figures() -> dict[str, FigureArtifact]:
    """One shared scenario run for all figure checks (module-scoped)."""
    return generate_all_figures(input_hw=32)


class TestFigureSet:
    def test_all_nine_figures_present(self, figures):
        assert sorted(figures) == sorted(EXPECTED_FIGURES)

    @pytest.mark.parametrize("figure_id", EXPECTED_FIGURES)
    def test_every_claim_holds(self, figures, figure_id):
        artifact = figures[figure_id]
        failing = [claim for claim, held in artifact.claims.items() if not held]
        assert not failing, f"{figure_id} failing claims: {failing}"

    def test_render_includes_all_ids(self, figures):
        text = render_figure_report(figures)
        for figure_id in EXPECTED_FIGURES:
            assert figure_id in text


class TestFigureContent:
    def test_fig06_shows_xmodel_cmdline(self, figures):
        assert "resnet50_pt.xmodel" in figures["fig06"].body

    def test_fig07_heap_line_format(self, figures):
        assert "[heap]" in figures["fig07"].body
        assert "rw-p" in figures["fig07"].body
        assert "aaaaee775000" in figures["fig07"].body

    def test_fig08_shows_virtual_to_physical_invocations(self, figures):
        assert "./virtual_to_physical.out" in figures["fig08"].body

    def test_fig10_shows_marker_word(self, figures):
        assert "0xFFFFFFFF" in figures["fig10"].body

    def test_fig11_grep_rows_contain_model_name(self, figures):
        assert "resnet50" in figures["fig11"].body

    def test_fig12_reports_profiled_row(self, figures):
        assert "hexdump row" in figures["fig12"].body

    def test_artifact_render_marks_ok(self, figures):
        rendered = figures["fig04"].render()
        assert "[ok]" in rendered
        assert "[FAIL]" not in rendered
