"""Tests for the self-healing toolkit: retry policies and breakers.

Everything runs on :class:`ManualClock` — a full retry schedule
"sleeps" in zero wall time, so the backoff math, deadline budgets, and
breaker reset windows are asserted exactly, not approximately.
"""

from __future__ import annotations

import pytest

from repro.errors import CircuitOpenError, RetryExhaustedError
from repro.utils.resilience import CircuitBreaker, ManualClock, RetryPolicy


class TestManualClock:
    def test_starts_where_told_and_only_runs_forward(self):
        clock = ManualClock(start=5.0)
        assert clock() == 5.0
        clock.advance(2.5)
        clock.sleep(1.5)
        assert clock() == 9.0
        with pytest.raises(ValueError):
            clock.advance(-0.1)


class TestRetryPolicy:
    def test_schedule_is_pure_exponential_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.5, multiplier=2.0,
            max_delay=3.0, jitter=0.0,
        )
        # 5 delays for 6 attempts (none after the final attempt),
        # capped at max_delay.
        assert policy.schedule() == (0.5, 1.0, 2.0, 3.0, 3.0)

    def test_jittered_schedule_is_deterministic_per_seed(self):
        one = RetryPolicy(seed=7).schedule()
        assert one == RetryPolicy(seed=7).schedule()
        assert one != RetryPolicy(seed=8).schedule()
        # Jitter spreads but never escapes its band.
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, multiplier=1.0,
            max_delay=1.0, jitter=0.25, seed=3,
        )
        for delay in policy.schedule():
            assert 0.75 <= delay <= 1.25

    def test_validation_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_call_returns_after_transient_failures(self):
        clock = ManualClock()
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, jitter=0.0)
        attempts = []

        def flaky():
            attempts.append(clock())
            if len(attempts) < 3:
                raise ConnectionError("blip")
            return "healed"

        result = policy.call(
            flaky, retry_on=(ConnectionError,),
            clock=clock, sleep=clock.sleep,
        )
        assert result == "healed"
        # Attempt 1 at t=0, retry after 1s, retry after 2s more.
        assert attempts == [0.0, 1.0, 3.0]

    def test_call_exhausts_attempt_cap_with_chained_cause(self):
        clock = ManualClock()
        policy = RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.0)
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(
                lambda: 1 / 0, retry_on=(ZeroDivisionError,),
                clock=clock, sleep=clock.sleep, op="drill",
            )
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, ZeroDivisionError)
        assert "drill" in str(excinfo.value)
        assert clock() == 3.0  # 1.0 + 2.0; no sleep after the last try

    def test_call_respects_deadline_budget(self):
        clock = ManualClock()
        policy = RetryPolicy(
            max_attempts=50, base_delay=4.0, multiplier=1.0,
            max_delay=4.0, jitter=0.0, deadline=10.0,
        )
        attempts = []
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(
                lambda: attempts.append(clock()) or 1 / 0,
                retry_on=(ZeroDivisionError,),
                clock=clock, sleep=clock.sleep,
            )
        # t=0 and t=4 run; t=8 runs (8 < 10); the retry at t=12 would
        # overshoot the budget so attempt 3 is the last.
        assert attempts == [0.0, 4.0, 8.0]
        assert excinfo.value.attempts == 3

    def test_call_never_swallows_foreign_exceptions(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.0)
        with pytest.raises(KeyError):
            policy.call(
                lambda: {}["missing"], retry_on=(ConnectionError,),
                clock=ManualClock(), sleep=lambda _s: None,
            )

    def test_on_retry_hook_sees_each_backoff(self):
        clock = ManualClock()
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.0)
        seen = []
        with pytest.raises(RetryExhaustedError):
            policy.call(
                lambda: 1 / 0, retry_on=(ZeroDivisionError,),
                clock=clock, sleep=clock.sleep,
                on_retry=lambda attempt, exc: seen.append(
                    (attempt, type(exc).__name__)
                ),
            )
        # Fires before each backoff — not after the final attempt.
        assert seen == [
            (1, "ZeroDivisionError"),
            (2, "ZeroDivisionError"),
            (3, "ZeroDivisionError"),
        ]

    def test_single_attempt_policy_never_sleeps(self):
        clock = ManualClock()
        with pytest.raises(RetryExhaustedError):
            RetryPolicy(max_attempts=1).call(
                lambda: 1 / 0, retry_on=(ZeroDivisionError,),
                clock=clock, sleep=clock.sleep,
            )
        assert clock() == 0.0


class TestCircuitBreaker:
    def make(self, clock, threshold=3, reset=30.0):
        return CircuitBreaker(
            failure_threshold=threshold, reset_timeout=reset,
            clock=clock, name="coordinator",
        )

    def test_trips_at_threshold_and_reports_retry_after(self):
        clock = ManualClock()
        breaker = self.make(clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(10.0)
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after == pytest.approx(20.0)

    def test_half_open_grants_exactly_one_probe(self):
        clock = ManualClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.allow()  # the probe slot
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # concurrent caller refused

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = ManualClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        # Trip again, probe again, fail the probe: back to open with a
        # re-armed window.
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(29.0)
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_success_resets_the_consecutive_failure_count(self):
        breaker = self.make(ManualClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_call_wraps_allow_and_recording(self):
        clock = ManualClock()
        breaker = self.make(clock, threshold=1)
        with pytest.raises(ZeroDivisionError):
            breaker.call(lambda: 1 / 0)
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never runs")
        clock.advance(30.0)
        assert breaker.call(lambda: "probe") == "probe"
        assert breaker.state == CircuitBreaker.CLOSED

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0.0)
