"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.dram import PAGE_SIZE, DramDevice
from repro.mmu.frame_alloc import FrameAllocator, ReusePolicy
from repro.mmu.pagemap import PagemapEntry, decode_entry, encode_entry
from repro.utils.bitfield import bytes_to_words, words_to_bytes
from repro.utils.hexdump import hexdump_paper_rows, parse_paper_row
from repro.utils.strings import extract_strings
from repro.vitis.image import Image
from repro.vitis.xmodel import XModel
from repro.vitis.zoo import MODEL_NAMES, build_model


# -- pagemap encoding ---------------------------------------------------------

pagemap_entries = st.builds(
    PagemapEntry,
    present=st.booleans(),
    pfn=st.integers(min_value=0, max_value=(1 << 55) - 1),
    swapped=st.just(False),
    file_page=st.booleans(),
    soft_dirty=st.booleans(),
    exclusive=st.booleans(),
)


@given(pagemap_entries)
def test_pagemap_roundtrip(entry):
    decoded = decode_entry(encode_entry(entry))
    if entry.present:
        assert decoded == entry
    else:
        # PFN is hidden for absent pages; all flags survive.
        assert decoded.pfn == 0
        assert decoded.present == entry.present
        assert decoded.file_page == entry.file_page


@given(st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_pagemap_decode_never_crashes_on_arbitrary_u64(value):
    entry = decode_entry(value)
    assert 0 <= entry.pfn < (1 << 55)


# -- hexdump ------------------------------------------------------------------

@given(st.binary(min_size=0, max_size=256))
def test_hexdump_row_count(data):
    rows = hexdump_paper_rows(data)
    assert len(rows) == (len(data) + 15) // 16


@given(st.binary(min_size=16, max_size=160).filter(lambda b: len(b) % 16 == 0))
def test_hexdump_roundtrip_full_rows(data):
    rebuilt = b"".join(parse_paper_row(row) for row in hexdump_paper_rows(data))
    assert rebuilt == data


# -- word conversion -----------------------------------------------------------

@given(st.binary(min_size=0, max_size=64).filter(lambda b: len(b) % 4 == 0))
def test_words_roundtrip(data):
    assert words_to_bytes(bytes_to_words(data)) == data


# -- strings extraction ----------------------------------------------------------

@given(st.binary(max_size=512), st.integers(min_value=1, max_value=8))
def test_extracted_strings_are_printable_and_in_bounds(data, minimum):
    for hit in extract_strings(data, minimum):
        assert len(hit.text) >= minimum
        assert all(0x20 <= ord(c) <= 0x7E for c in hit.text)
        segment = data[hit.offset : hit.offset + len(hit.text)]
        assert segment.decode("ascii") == hit.text


@given(st.text(alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E),
               min_size=6, max_size=20))
def test_planted_string_is_always_found(text):
    data = b"\x00\x01" + text.encode() + b"\xff\x02"
    assert any(hit.text == text for hit in extract_strings(data, 4))


# -- DRAM ----------------------------------------------------------------------

@given(
    offset=st.integers(min_value=0, max_value=8 * PAGE_SIZE - 64),
    payload=st.binary(min_size=1, max_size=64),
)
def test_dram_write_read_roundtrip(offset, payload):
    dram = DramDevice(capacity=8 * PAGE_SIZE)
    dram.write(offset, payload)
    assert dram.read(offset, len(payload)) == payload


@given(
    first=st.binary(min_size=1, max_size=32),
    second=st.binary(min_size=1, max_size=32),
)
def test_dram_disjoint_writes_do_not_interfere(first, second):
    dram = DramDevice(capacity=4 * PAGE_SIZE)
    dram.write(0, first)
    dram.write(PAGE_SIZE, second)
    assert dram.read(0, len(first)) == first
    assert dram.read(PAGE_SIZE, len(second)) == second


# -- frame allocator -------------------------------------------------------------

@st.composite
def alloc_free_scripts(draw):
    """A random interleaving of allocate/free operations."""
    return draw(
        st.lists(
            st.tuples(st.sampled_from(["alloc", "free"]),
                      st.integers(min_value=1, max_value=8)),
            min_size=1, max_size=30,
        )
    )


@given(
    script=alloc_free_scripts(),
    policy=st.sampled_from(list(ReusePolicy)),
)
@settings(max_examples=60)
def test_frame_allocator_never_double_allocates(script, policy):
    allocator = FrameAllocator(total_frames=128, policy=policy, seed=7)
    held: list[list[int]] = []
    outstanding: set[int] = set()
    for operation, count in script:
        if operation == "alloc":
            if count > allocator.free_frames():
                continue
            frames = allocator.allocate(count, owner=1)
            assert not (set(frames) & outstanding), "frame handed out twice"
            assert len(set(frames)) == len(frames)
            outstanding |= set(frames)
            held.append(frames)
        elif held:
            frames = held.pop()
            allocator.free(frames)
            outstanding -= set(frames)
    assert allocator.allocated_frames() == len(outstanding)


@given(policy=st.sampled_from(list(ReusePolicy)))
def test_frame_allocator_conservation(policy):
    allocator = FrameAllocator(total_frames=64, policy=policy)
    frames = allocator.allocate(10)
    assert allocator.free_frames() + allocator.allocated_frames() == 64
    allocator.free(frames)
    assert allocator.free_frames() == 64


# -- images ------------------------------------------------------------------------

@given(
    width=st.integers(min_value=1, max_value=32),
    height=st.integers(min_value=1, max_value=32),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_image_raw_roundtrip(width, height, seed):
    image = Image.test_pattern(width, height, seed)
    rebuilt = Image.from_raw_rgb(image.to_raw_rgb(), width, height)
    assert rebuilt.pixel_match_rate(image) == 1.0


@given(fraction=st.floats(min_value=0.05, max_value=1.0))
def test_corruption_fraction_close_to_requested(fraction):
    image = Image.test_pattern(20, 20, seed=1)
    corrupted = image.corrupted(fraction)
    marked = corrupted.marker_fraction((0xFF, 0xFF, 0xFF))
    # Row quantization bounds the error by one row.
    assert abs(marked - fraction) <= 1 / 20 + 1e-9


# -- xmodel ---------------------------------------------------------------------------

@given(
    name=st.sampled_from(MODEL_NAMES),
    input_hw=st.sampled_from([16, 24, 32]),
)
@settings(max_examples=20, deadline=None)
def test_xmodel_serialization_roundtrip(name, input_hw):
    model = build_model(name, input_hw=input_hw)
    rebuilt = XModel.parse(model.serialize())
    assert rebuilt == model
    assert rebuilt.subgraph.macs == model.subgraph.macs


@given(blob=st.binary(max_size=64))
def test_xmodel_parse_never_crashes_on_garbage(blob):
    from repro.errors import XModelFormatError

    try:
        XModel.parse(blob)
    except XModelFormatError:
        pass  # rejection is the expected outcome for garbage
