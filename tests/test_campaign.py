"""The campaign engine: scheduling, aggregation, batching, end-to-end."""

from __future__ import annotations

import pytest

from repro.attack.addressing import AddressHarvester, TranslationCache
from repro.attack.config import AttackConfig
from repro.attack.extraction import MemoryScraper
from repro.attack.pipeline import MemoryScrapingAttack
from repro.attack.polling import PidPoller
from repro.campaign import (
    BoardWorker,
    CampaignReport,
    CampaignSpec,
    VictimOutcome,
    build_schedule,
    jobs_by_board,
    prepare_offline,
    provision_fleet,
    run_campaign,
)
from repro.evaluation.metrics import ThroughputStats
from repro.evaluation.scenarios import BoardSession


# -- scheduling ---------------------------------------------------------------


class TestSchedule:
    def test_same_seed_same_schedule(self):
        spec = CampaignSpec(boards=3, victims=9, seed=42)
        assert build_schedule(spec) == build_schedule(spec)

    def test_different_seed_different_schedule(self):
        base = CampaignSpec(boards=3, victims=9, seed=0)
        other = CampaignSpec(boards=3, victims=9, seed=1)
        assert build_schedule(base) != build_schedule(other)

    def test_round_robin_board_assignment(self):
        jobs = build_schedule(CampaignSpec(boards=4, victims=10))
        assert [job.board_index for job in jobs] == [
            0, 1, 2, 3, 0, 1, 2, 3, 0, 1,
        ]

    def test_waves_and_tenants_cycle_per_board(self):
        spec = CampaignSpec(
            boards=2, victims=8, tenants_per_board=2, wave_size=2
        )
        board0 = jobs_by_board(build_schedule(spec))[0]
        assert [job.launch_wave for job in board0] == [0, 0, 1, 1]
        assert [job.tenant_index for job in board0] == [0, 1, 0, 1]

    def test_models_come_from_the_mix(self):
        spec = CampaignSpec(boards=2, victims=20, seed=3)
        for job in build_schedule(spec):
            assert job.model_name in spec.model_mix
            assert job.image_seed > 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(boards=0)
        with pytest.raises(ValueError):
            CampaignSpec(victims=-1)
        with pytest.raises(ValueError):
            CampaignSpec(model_mix=("no_such_model",))
        with pytest.raises(ValueError):
            CampaignSpec(wave_size=0)


# -- report aggregation -------------------------------------------------------


def _outcome(**overrides) -> VictimOutcome:
    fields = dict(
        job_id=0,
        board_index=0,
        board_name="ZCU104",
        model_name="resnet50_pt",
        tenant_index=0,
        launch_wave=0,
        pid=100,
        identified_model="resnet50_pt",
        pixel_match_rate=1.0,
        nbytes=4096,
        devmem_reads=1,
        pages_read=1,
        wall_seconds=0.5,
    )
    fields.update(overrides)
    return VictimOutcome(**fields)


class TestReportAggregation:
    def _report(self) -> CampaignReport:
        outcomes = [
            _outcome(job_id=0),
            _outcome(
                job_id=1,
                board_index=1,
                board_name="ZCU102",
                model_name="squeezenet_pt",
                identified_model="squeezenet_pt",
                pixel_match_rate=0.5,
                nbytes=8192,
                devmem_reads=2,
            ),
            _outcome(
                job_id=2,
                board_index=1,
                board_name="ZCU102",
                identified_model=None,
                pixel_match_rate=None,
                nbytes=0,
                devmem_reads=0,
                failed_step="step 3-4 (extract/analyze)",
                detail="scrubbed",
            ),
        ]
        return CampaignReport(
            spec=CampaignSpec(boards=2, victims=3),
            outcomes=outcomes,
            wall_seconds=2.0,
        )

    def test_fleet_rates(self):
        report = self._report()
        assert report.victims == 3
        assert report.identification_rate == pytest.approx(2 / 3)
        assert report.image_recovery_rate == pytest.approx(1 / 3)
        assert report.success_rate == pytest.approx(2 / 3)
        assert report.total_bytes == 4096 + 8192
        assert report.total_devmem_reads == 3

    def test_throughput_math(self):
        throughput = self._report().throughput
        assert throughput == ThroughputStats(
            nbytes=12288, victims=3, wall_seconds=2.0
        )
        assert throughput.bytes_per_second == pytest.approx(6144.0)
        assert throughput.victims_per_second == pytest.approx(1.5)

    def test_per_model_breakdown(self):
        rows = {row.model_name: row for row in self._report().per_model()}
        assert rows["resnet50_pt"].victims == 2
        assert rows["resnet50_pt"].identified == 1
        assert rows["resnet50_pt"].identification_rate == pytest.approx(0.5)
        assert rows["squeezenet_pt"].victims == 1
        assert rows["squeezenet_pt"].images_recovered == 0

    def test_per_board_breakdown(self):
        rows = self._report().per_board()
        assert [row.board_index for row in rows] == [0, 1]
        assert rows[1].victims == 2
        assert rows[1].succeeded == 1
        assert rows[1].nbytes == 8192

    def test_failures_listed_and_rendered(self):
        report = self._report()
        assert len(report.failures()) == 1
        assert "scrubbed" in report.render()

    def test_empty_report_rates_are_zero(self):
        report = CampaignReport(
            spec=CampaignSpec(), outcomes=[], wall_seconds=0.0
        )
        assert report.success_rate == 0.0
        assert report.throughput.bytes_per_second == 0.0

    def test_json_round_trip(self):
        report = self._report()
        rebuilt = CampaignReport.from_json(report.to_json())
        assert rebuilt.spec == report.spec
        assert rebuilt.outcomes == report.outcomes
        assert rebuilt.render() == report.render()


# -- batched extraction regression -------------------------------------------


class TestBatchedExtraction:
    @pytest.fixture()
    def harvested(self, session: BoardSession):
        run = session.victim_application().launch("resnet50_pt")
        harvester = AddressHarvester(
            session.attacker_shell.procfs, caller=session.attacker_shell.user
        )
        harvested = harvester.harvest(run.pid)
        run.terminate()
        return session, harvested

    def test_coalesced_dump_byte_identical_to_word_mode(self, harvested):
        session, harvested_range = harvested
        shell = session.attacker_shell
        word = MemoryScraper(
            shell.devmem_tool, shell.user, AttackConfig()
        ).scrape(harvested_range)
        coalesced = MemoryScraper(
            shell.devmem_tool, shell.user, AttackConfig(coalesce_reads=True)
        ).scrape(harvested_range)
        assert coalesced.data == word.data
        assert coalesced.pages_read == word.pages_read
        assert coalesced.pages_skipped == word.pages_skipped
        assert coalesced.devmem_reads < word.devmem_reads

    def test_coalesced_takes_precedence_over_bulk(self, harvested):
        session, harvested_range = harvested
        shell = session.attacker_shell
        bulk = MemoryScraper(
            shell.devmem_tool, shell.user, AttackConfig(bulk_reads=True)
        ).scrape(harvested_range)
        both = MemoryScraper(
            shell.devmem_tool,
            shell.user,
            AttackConfig(bulk_reads=True, coalesce_reads=True),
        ).scrape(harvested_range)
        assert both.data == bulk.data
        assert both.devmem_reads <= bulk.devmem_reads


# -- translation cache --------------------------------------------------------


class TestTranslationCache:
    def test_repeat_harvest_hits_cache(self, session: BoardSession):
        run = session.victim_application().launch("resnet50_pt")
        cache = TranslationCache()
        harvester = AddressHarvester(
            session.attacker_shell.procfs,
            caller=session.attacker_shell.user,
            cache=cache,
        )
        first = harvester.harvest(run.pid)
        second = harvester.harvest(run.pid)
        assert second is first
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_pipeline_invalidates_on_termination(self, session: BoardSession):
        profiles = session.profile(["resnet50_pt"])
        cache = TranslationCache()
        run = session.victim_application().launch("resnet50_pt")
        attack = MemoryScrapingAttack(
            session.attacker_shell, profiles, translation_cache=cache
        )
        attack.observe_victim("resnet50_pt")
        attack.harvest_addresses()
        assert len(cache) == 1
        run.terminate()
        attack.extract()
        assert len(cache) == 0
        assert cache.invalidations == 1


# -- pid exclusion ------------------------------------------------------------


class TestPidExclusion:
    def test_excluded_pid_is_skipped(self, session: BoardSession):
        app = session.victim_application()
        first = app.launch("resnet50_pt")
        second = app.launch("resnet50_pt")
        poller = PidPoller(session.attacker_shell)
        sighting = poller.wait_for_victim(
            "resnet50_pt", exclude_pids=frozenset({first.pid})
        )
        assert sighting.pid == second.pid


# -- end to end ---------------------------------------------------------------


class TestCampaignEndToEnd:
    def test_small_campaign_leaks_everywhere(self):
        spec = CampaignSpec(
            boards=2,
            victims=4,
            tenants_per_board=2,
            wave_size=2,
            seed=7,
        )
        report = run_campaign(spec)
        assert report.victims == 4
        assert report.success_rate == 1.0
        assert not report.failures()
        assert {outcome.board_index for outcome in report.outcomes} == {0, 1}
        assert report.total_bytes > 0
        # Coalesced extraction: far fewer reads than one per word.
        assert report.total_devmem_reads < report.total_bytes // 4

    def test_worker_serves_pipeline_harvest_from_board_cache(self):
        spec = CampaignSpec(boards=1, victims=2, wave_size=2, seed=4)
        profiles, database = prepare_offline(spec)
        board = provision_fleet(spec)[0]
        worker = BoardWorker(
            board, profiles, database, AttackConfig(coalesce_reads=True)
        )
        outcomes = worker.run_jobs(build_schedule(spec))
        assert all(outcome.succeeded for outcome in outcomes)
        # The worker snapshots at claim time (miss), the pipeline
        # re-harvests from the cache (hit), extract() invalidates.
        cache = board.translation_cache
        assert cache.misses == 2
        assert cache.hits == 2
        assert cache.invalidations == 2
        assert len(cache) == 0

    def test_unattributable_dump_keeps_extraction_stats(self):
        # Victims run a model the adversary never profiled: extraction
        # succeeds, attribution fails — the outcome must keep the real
        # dump stats instead of reporting a zero-byte failure.
        from repro.attack.identify import SignatureDatabase

        spec = CampaignSpec(
            boards=1, victims=1, model_mix=("resnet50_pt",), seed=0
        )
        reference = BoardSession.boot(input_hw=spec.input_hw)
        profiles = reference.profile(["squeezenet_pt", "vgg16_pt"])
        report = run_campaign(
            spec,
            profiles=profiles,
            database=SignatureDatabase.from_profiles(profiles),
        )
        (outcome,) = report.outcomes
        assert outcome.identified_model is None
        assert not outcome.succeeded
        assert outcome.failed_step is None
        assert outcome.nbytes > 0
        assert "cannot attribute" in outcome.detail

    def test_caller_supplied_profiles_are_used(self):
        spec = CampaignSpec(boards=1, victims=1, seed=2)
        profiles, _ = prepare_offline(spec)
        report = run_campaign(spec, profiles=profiles)
        assert report.success_rate == 1.0

    def test_same_model_co_residents_do_not_collide(self):
        # One board, one wave, two victims of the same model: the pid
        # exclusion must pair each attack with its own victim.
        spec = CampaignSpec(
            boards=1,
            victims=2,
            model_mix=("resnet50_pt",),
            tenants_per_board=2,
            wave_size=2,
            seed=0,
        )
        report = run_campaign(spec)
        pids = [outcome.pid for outcome in report.outcomes]
        assert len(set(pids)) == 2
        assert report.image_recovery_rate == 1.0
