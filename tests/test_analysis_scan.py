"""Fast-path vs. reference equivalence for the single-pass scan engine.

Every hot path in ``repro.analysis`` must agree with the
straightforward per-byte implementation it replaced
(``repro.analysis.reference``): byte-identical region maps, identical
window classifications, score-identical signature matches — over
randomized windows and the empty / all-zero / single-byte /
partial-trailing-window edges.
"""

import numpy as np
import pytest

from repro.analysis.ahocorasick import AhoCorasick
from repro.analysis.reference import (
    reference_classify_window,
    reference_map_dump,
    reference_match,
    reference_nonzero_bytes,
    reference_printable_fraction,
    reference_region_at,
    reference_shannon_entropy,
)
from repro.analysis.scan import (
    CLASS_LOW_MAGNITUDE,
    CLASS_PRINTABLE,
    CLASS_TABLE,
    ScanCore,
    count_positive,
    nonzero_count,
)
from repro.attack.carving import (
    DumpCartographer,
    printable_fraction,
    shannon_entropy,
)
from repro.attack.extraction import ScrapedDump
from repro.attack.identify import ModelSignature, SignatureDatabase
from repro.utils.hexdump import HexDump


def _random_windows(seed: int, count: int = 24) -> list[bytes]:
    """A mixed bag of windows: every kind plus degenerate shapes."""
    rng = np.random.default_rng(seed)
    windows = [
        b"",                      # empty
        b"\x00",                  # single zero byte
        b"\x41",                  # single printable byte
        b"\xf7",                  # single high byte
        b"\x00" * 256,            # all-zero full window
        b"\x55" * 100,            # constant
        b"/usr/share/vitis_ai_library/models/resnet50_pt\x00" * 3,
        rng.integers(-8, 9, size=256, dtype=np.int8).tobytes(),   # quantized
        rng.integers(0, 256, size=256, dtype=np.uint8).tobytes(),  # random
        rng.integers(0, 256, size=131, dtype=np.uint8).tobytes(),  # partial
    ]
    for _ in range(count):
        length = int(rng.integers(1, 512))
        windows.append(
            rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()
        )
    for _ in range(count):
        # Small-alphabet windows hover around the quantized boundary.
        length = int(rng.integers(16, 300))
        alphabet = rng.integers(0, 256, size=int(rng.integers(2, 60)))
        windows.append(
            rng.choice(alphabet, size=length).astype(np.uint8).tobytes()
        )
    return windows


def _composite_dump(seed: int) -> bytes:
    """A dump mixing every region kind, ending on a partial window."""
    rng = np.random.default_rng(seed)
    return b"".join(
        [
            bytes(1024),
            rng.integers(-10, 11, size=2048, dtype=np.int8).tobytes(),
            b"/usr/share/vitis_ai_library/models/squeezenet_pt\x00" * 32,
            rng.integers(0, 256, size=1536, dtype=np.uint8).tobytes(),
            b"\xff" * 512,
            rng.integers(0, 256, size=333, dtype=np.uint8).tobytes(),
        ]
    )


class TestClassTable:
    def test_printable_bit_matches_reference_definition(self):
        for byte in range(256):
            expected = byte == 0 or 0x20 <= byte <= 0x7E
            assert bool(CLASS_TABLE[byte] & CLASS_PRINTABLE) == expected

    def test_low_magnitude_bit_matches_reference_definition(self):
        for byte in range(256):
            expected = byte < 64 or byte >= 192
            assert bool(CLASS_TABLE[byte] & CLASS_LOW_MAGNITUDE) == expected


class TestStatisticEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_entropy_matches_reference(self, seed):
        for window in _random_windows(seed):
            assert shannon_entropy(window) == pytest.approx(
                reference_shannon_entropy(window), abs=1e-9
            )

    @pytest.mark.parametrize("seed", [4, 5])
    def test_printable_fraction_identical(self, seed):
        for window in _random_windows(seed):
            assert printable_fraction(window) == reference_printable_fraction(
                window
            )

    def test_nonzero_count_identical(self):
        rng = np.random.default_rng(11)
        for data in (b"", b"\x00" * 64, b"\x01",
                     rng.integers(0, 4, size=4096, dtype=np.uint8).tobytes()):
            assert nonzero_count(data) == reference_nonzero_bytes(data)

    def test_count_positive(self):
        assert count_positive([]) == 0
        assert count_positive([0, 1, -3, 7, 0]) == 2

    def test_scan_core_reuse_across_inputs(self):
        # One core, many differently sized inputs: the lazily grown
        # scratch tables must never leak state between scans.
        core = ScanCore()
        rng = np.random.default_rng(12)
        for length in (16, 4096, 100, 9000, 1):
            data = rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()
            assert core.entropy(data) == pytest.approx(
                reference_shannon_entropy(data), abs=1e-9
            )


class TestClassificationEquivalence:
    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_classify_window_identical(self, seed):
        cartographer = DumpCartographer()
        for window in _random_windows(seed):
            assert cartographer.classify_window(
                window
            ) is reference_classify_window(window)

    def test_classify_window_identical_under_custom_thresholds(self):
        cartographer = DumpCartographer(
            window=64, text_threshold=0.5, random_entropy=5.0,
            quantized_max_alphabet=16,
        )
        for window in _random_windows(31):
            assert cartographer.classify_window(
                window
            ) is reference_classify_window(
                window, text_threshold=0.5, random_entropy=5.0,
                quantized_max_alphabet=16,
            )

    @pytest.mark.parametrize("seed", [41, 42, 43])
    def test_map_dump_byte_identical(self, seed):
        cartographer = DumpCartographer()
        dump = _composite_dump(seed)
        assert cartographer.map_dump(dump) == reference_map_dump(dump)

    def test_map_dump_edges(self):
        cartographer = DumpCartographer()
        for dump in (b"", b"\x00", b"\x41", b"\x00" * 256, b"\x00" * 300,
                     b"\xaa" * 17):
            assert cartographer.map_dump(dump) == reference_map_dump(dump)

    def test_map_dump_with_non_default_window(self):
        cartographer = DumpCartographer(window=64)
        dump = _composite_dump(7)
        assert cartographer.map_dump(dump) == reference_map_dump(
            dump, window=64
        )

    def test_map_dump_accepts_bytearray(self):
        dump = bytearray(_composite_dump(9))
        assert DumpCartographer().map_dump(dump) == reference_map_dump(
            bytes(dump)
        )


class TestRegionAtBisect:
    def test_matches_linear_reference_everywhere(self):
        cartographer = DumpCartographer()
        dump = _composite_dump(55)
        regions = cartographer.map_dump(dump)
        assert len(regions) > 3
        probes = [0, len(dump) - 1]
        for region in regions:
            probes += [region.start, region.end - 1]
        for offset in probes:
            assert cartographer.region_at(
                regions, offset
            ) == reference_region_at(regions, offset)

    def test_outside_offsets_raise(self):
        cartographer = DumpCartographer()
        regions = cartographer.map_dump(b"\x00" * 512)
        for offset in (-1, 512, 100000):
            with pytest.raises(ValueError):
                cartographer.region_at(regions, offset)
            with pytest.raises(ValueError):
                reference_region_at(regions, offset)

    def test_empty_region_list_raises(self):
        with pytest.raises(ValueError):
            DumpCartographer().region_at([], 0)


def _token_database(seed: int, models: int = 6, tokens: int = 12):
    rng = np.random.default_rng(seed)
    signatures = []
    for index in range(models):
        name = f"model{index}_pt"
        signatures.append(ModelSignature(
            model_name=name,
            tokens=frozenset(
                f"{name}_t{j}_{int(rng.integers(100))}" for j in range(tokens)
            ),
        ))
    return SignatureDatabase(signatures), signatures


class TestSignatureMatchEquivalence:
    @pytest.mark.parametrize("seed", [61, 62, 63])
    def test_scores_identical_to_in_scan_reference(self, seed):
        database, signatures = _token_database(seed)
        rng = np.random.default_rng(seed + 1000)
        embedded = []
        for signature in signatures[::2]:
            embedded += sorted(signature.tokens)[: int(rng.integers(1, 9))]
        dump = (
            rng.integers(0, 256, size=8192, dtype=np.uint8).tobytes()
            + "\x00".join(embedded).encode()
            + bytes(2048)
        )
        assert database.match(dump) == reference_match(database, dump)

    def test_empty_dump_and_absent_tokens(self):
        database, _ = _token_database(70)
        for dump in (b"", bytes(4096), b"unrelated text entirely"):
            assert database.match(dump) == reference_match(database, dump)

    def test_empty_signature_scores_zero(self):
        database = SignatureDatabase([
            ModelSignature(model_name="empty", tokens=frozenset()),
            ModelSignature(model_name="real", tokens=frozenset({"tokenA"})),
        ])
        result = database.match(b"has tokenA inside")
        assert result["empty"] == (0.0, [])
        assert result["real"] == (1.0, ["tokenA"])
        assert result == reference_match(database, b"has tokenA inside")

    def test_tokens_with_colliding_encodings_all_match(self):
        # With errors="ignore", distinct tokens can share one encoding
        # (a lone surrogate drops out); every colliding token must
        # still be reported, exactly like the per-token ``in`` scans.
        database = SignatureDatabase([
            ModelSignature(model_name="a", tokens=frozenset({"abcdef"})),
            ModelSignature(model_name="b",
                           tokens=frozenset({"abc\udc80def"})),
        ])
        dump = b"xx abcdef yy"
        result = database.match(dump)
        assert result == reference_match(database, dump)
        assert result["a"] == (1.0, ["abcdef"])
        assert result["b"] == (1.0, ["abc\udc80def"])

    def test_shared_token_matches_both_models(self):
        database = SignatureDatabase([
            ModelSignature(model_name="a", tokens=frozenset({"shared_tok"})),
            ModelSignature(model_name="b",
                           tokens=frozenset({"shared_tok", "only_b"})),
        ])
        dump = b"...shared_tok..."
        assert database.match(dump) == reference_match(database, dump)


class TestAhoCorasick:
    def test_anchored_equals_streaming_and_in_scan(self):
        rng = np.random.default_rng(81)
        patterns = [
            bytes(rng.integers(0, 256, size=int(rng.integers(1, 12)),
                               dtype=np.uint8))
            for _ in range(40)
        ]
        automaton = AhoCorasick(patterns)
        for _ in range(20):
            haystack = bytes(
                rng.integers(0, 256, size=2048, dtype=np.uint8)
            ) + patterns[int(rng.integers(len(patterns)))]
            expected = {p for p in automaton.patterns if p in haystack}
            assert automaton.find_present(haystack) == expected
            assert automaton.find_present_streaming(haystack) == expected

    def test_overlapping_and_nested_patterns(self):
        automaton = AhoCorasick([b"net50", b"resnet50_pt", b"50_pt", b"ee"])
        haystack = b"xx/resnet50_pt/weights"
        expected = {b"net50", b"resnet50_pt", b"50_pt"}
        assert automaton.find_present(haystack) == expected
        assert automaton.find_present_streaming(haystack) == expected

    def test_empty_pattern_always_present(self):
        # ``b"" in data`` is True for any data; presence semantics of
        # the replaced ``in`` scans are preserved verbatim.
        automaton = AhoCorasick([b"", b"abc"])
        assert automaton.find_present(b"") == {b""}
        assert automaton.find_present(b"zzz") == {b""}
        assert automaton.find_present(b"xabcx") == {b"", b"abc"}

    def test_duplicate_patterns_deduplicated(self):
        automaton = AhoCorasick([b"dup", b"dup", b"other"])
        assert len(automaton) == 2
        assert automaton.find_present(b"--dup--") == {b"dup"}

    def test_match_at_very_end_of_haystack(self):
        automaton = AhoCorasick([b"tail"])
        assert automaton.find_present(b"xxxxtail") == {b"tail"}
        assert automaton.find_present(b"xxxxtai") == set()

    def test_no_patterns(self):
        automaton = AhoCorasick([])
        assert automaton.find_present(b"anything") == set()


class TestLazyHexdump:
    def _dump(self) -> ScrapedDump:
        return ScrapedDump(
            pid=42, heap_start=0x1000,
            data=b"\x00" * 32 + b"resnet50" + b"\x00" * 24,
            pages_read=1, pages_skipped=0, devmem_reads=1,
        )

    def test_hexdump_not_built_until_accessed(self):
        dump = self._dump()
        assert dump._hexdump is None
        assert dump.hexdump.grep("resnet50")
        assert dump._hexdump is not None

    def test_hexdump_cached_on_repeat_access(self):
        dump = self._dump()
        assert dump.hexdump is dump.hexdump

    def test_hexdump_skips_copy_for_bytes(self):
        data = b"\x01" * 64
        assert HexDump(data).data is data

    def test_hexdump_keeps_bytearray_zero_copy(self):
        # Pool-backed dumps hand over bytearrays; HexDump aliases them
        # (zero-copy ownership rules — see docs/performance.md) instead
        # of copying multi-megabyte dumps to render a few grep rows.
        mutable = bytearray(b"\x02" * 64)
        assert HexDump(mutable).data is mutable

    def test_hexdump_copies_buffers_without_find(self):
        # memoryview has no .find, so it is the one input still copied.
        view = memoryview(b"\x03" * 64)
        hexdump = HexDump(view)
        assert isinstance(hexdump.data, bytes)
        assert hexdump.data == bytes(view)
