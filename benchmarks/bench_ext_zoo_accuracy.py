"""Extension — model identification accuracy across the whole zoo.

The paper identifies one model by grepping for its name; this
experiment profiles all eight library models and attacks each one,
measuring attribution accuracy of the signature database.
"""

from conftest import INPUT_HW, OUT_DIR

from repro.attack.pipeline import MemoryScrapingAttack
from repro.evaluation.metrics import identification_accuracy
from repro.evaluation.scenarios import BoardSession
from repro.vitis.zoo import MODEL_NAMES


def _attack_every_model():
    session = BoardSession.boot(input_hw=INPUT_HW)
    profiles = session.profile(list(MODEL_NAMES))
    predictions = []
    recovered = []
    for name in MODEL_NAMES:
        victim = session.victim_application().launch(name)
        attack = MemoryScrapingAttack(session.attacker_shell, profiles)
        report = attack.execute(name, terminate_victim=victim.terminate)
        predictions.append(report.identification.best_model)
        recovered.append(report.reconstruction is not None)
    return predictions, recovered


def test_zoo_identification_accuracy(benchmark):
    predictions, recovered = benchmark.pedantic(
        _attack_every_model, rounds=1, iterations=1
    )

    accuracy = identification_accuracy(predictions, list(MODEL_NAMES))
    lines = [f"{'victim model':<18} {'attributed as':<18} reconstructed"]
    for name, predicted, ok in zip(MODEL_NAMES, predictions, recovered):
        lines.append(f"{name:<18} {predicted:<18} {'yes' if ok else 'no'}")
    lines.append(f"accuracy: {accuracy:.3f} over {len(MODEL_NAMES)} models")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_zoo_accuracy.txt").write_text("\n".join(lines) + "\n")

    assert accuracy == 1.0
    assert all(recovered)
