"""Extension — residue decay as freed frames are reallocated.

The paper scrapes immediately after termination; this experiment asks
how long the window stays open.  With the deterministic LIFO allocator
the victim's frames are the first to be handed to new workloads, so
recovery collapses after a couple of filler processes — quantifying
"scrape fast or lose it".
"""

from conftest import INPUT_HW, OUT_DIR

from repro.evaluation.scenarios import reuse_decay_experiment

FILLER_COUNTS = [0, 1, 2, 4, 8]


def test_reuse_decay_curve(benchmark):
    points = benchmark.pedantic(
        reuse_decay_experiment, args=(FILLER_COUNTS,),
        kwargs={"input_hw": INPUT_HW}, rounds=1, iterations=1,
    )

    lines = [f"{'fillers':<8} {'frames surviving':<18} image recovery"]
    for point in points:
        lines.append(
            f"{point.filler_processes:<8} "
            f"{point.frames_surviving_fraction:<18.2f} "
            f"{point.image_recovery_rate:.3f}"
        )
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_reuse_decay.txt").write_text("\n".join(lines) + "\n")

    # Immediate scrape is perfect; survival decays monotonically.
    assert points[0].image_recovery_rate == 1.0
    survival = [point.frames_surviving_fraction for point in points]
    assert all(a >= b for a, b in zip(survival, survival[1:]))
    # Enough reuse destroys the image.
    assert points[-1].image_recovery_rate < 0.1
