"""Extension — scrub cost versus vulnerability window, by queue depth.

The arena's two async-scrub numbers pull in opposite directions: a
faster scrub daemon closes the window of vulnerability sooner but
burns more memory bandwidth per tick, while synchronous zero-on-free
has no window at all but charges its full cost as teardown latency.
This benchmark quantifies the trade across queue depths (how many
frames one teardown frees) and scrub rates:

- **window ticks** — scheduler ticks until the backlog drains (the
  interval an attacker can still scrape residue);
- **drain wall time** — host cost of the scrubbing itself;
- **sync teardown** — the zero-on-free alternative's one-shot cost
  for the same frame count.

Writes ``benchmarks/out/defense_overhead.txt``.
"""

from __future__ import annotations

import time

from conftest import OUT_DIR

from repro.hw.dram import DramDevice, PAGE_SIZE
from repro.petalinux.sanitizer import SanitizePolicy, Sanitizer

QUEUE_DEPTHS = (64, 256, 1024)
SCRUB_RATES = (16, 64, 256)


def _dirty_dram(frames: int) -> DramDevice:
    dram = DramDevice(capacity=max(frames, 1) * PAGE_SIZE * 2)
    for frame in range(frames):
        dram.write(frame * PAGE_SIZE, b"\xa5" * PAGE_SIZE)
    return dram


def _drain(depth: int, rate: int) -> tuple[int, float]:
    """(window ticks, drain wall seconds) for one depth × rate cell."""
    dram = _dirty_dram(depth)
    sanitizer = Sanitizer(
        dram, policy=SanitizePolicy.SCRUB_POOL, scrub_rate_per_tick=rate
    )
    sanitizer.on_free(list(range(depth)))
    ticks = 0
    started = time.perf_counter()
    while sanitizer.pending:
        sanitizer.tick()
        ticks += 1
    return ticks, time.perf_counter() - started


def _sync_teardown(depth: int) -> float:
    """Wall seconds zero-on-free spends scrubbing *depth* frames."""
    dram = _dirty_dram(depth)
    sanitizer = Sanitizer(dram, policy=SanitizePolicy.ZERO_ON_FREE)
    started = time.perf_counter()
    sanitizer.on_free(list(range(depth)))
    return time.perf_counter() - started


def _sweep():
    rows = []
    for depth in QUEUE_DEPTHS:
        sync_seconds = _sync_teardown(depth)
        for rate in SCRUB_RATES:
            ticks, drain_seconds = _drain(depth, rate)
            rows.append((depth, rate, ticks, drain_seconds, sync_seconds))
    return rows


def test_defense_overhead(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = [
        f"{'queue depth':>11} {'rate/tick':>9} {'window ticks':>12} "
        f"{'drain ms':>9} {'sync teardown ms':>16}"
    ]
    for depth, rate, ticks, drain_seconds, sync_seconds in rows:
        lines.append(
            f"{depth:>11} {rate:>9} {ticks:>12} "
            f"{drain_seconds * 1000:>9.3f} {sync_seconds * 1000:>16.3f}"
        )
        # The window shrinks as the scrub rate rises...
        assert ticks == -(-depth // rate)
    # ...and a faster daemon never reopens it: for every depth the
    # window is monotonically non-increasing in the scrub rate.
    for depth in QUEUE_DEPTHS:
        windows = [row[2] for row in rows if row[0] == depth]
        assert windows == sorted(windows, reverse=True)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "defense_overhead.txt").write_text("\n".join(lines) + "\n")
