"""Fig. 7 — the heap VA range from ``/proc/<pid>/maps``.

Times the cross-user maps read plus heap-line parse of step 2.
"""

from conftest import VICTIM_MODEL, assert_figure_claims

from repro.attack.addressing import AddressHarvester
from repro.petalinux.process import DEFAULT_HEAP_BASE


def test_fig07_heap_range(benchmark, scenario):
    session = scenario.session
    run = session.victim_application().launch(VICTIM_MODEL, infer=False)
    harvester = AddressHarvester(
        session.attacker_shell.procfs, caller=session.attacker_shell.user
    )

    start, end = benchmark(harvester.read_heap_range, run.pid)

    assert start == DEFAULT_HEAP_BASE == 0xAAAA_EE77_5000
    assert end > start
    run.terminate()
    assert_figure_claims(scenario, "fig07")
