"""Extension — fleet campaign throughput and batched extraction.

Three questions, benchmarked:

1. Does coalescing contiguous physical ranges into bulk devmem reads
   beat the paper's word-at-a-time automation on dump throughput?
   (It must: a heap that costs tens of thousands of word reads
   collapses into a handful of range reads.)
2. What does a whole multi-board campaign sustain end-to-end, offline
   prep and board boots included?
3. What does the same fleet sustain on the multiprocess executor,
   worker startup and prep shipping included — and does sharding
   change any outcome?  (It must not: the canonical outcomes are
   executor-invariant.)

Artifacts land in ``benchmarks/out/ext_campaign_*.txt``.
"""

import time

from conftest import INPUT_HW, OUT_DIR, VICTIM_MODEL

import pytest

from repro.attack.addressing import AddressHarvester
from repro.attack.config import AttackConfig
from repro.attack.extraction import MemoryScraper
from repro.campaign import CampaignSpec, run_campaign
from repro.evaluation.scenarios import BoardSession


@pytest.fixture(scope="module")
def harvested_board():
    """A terminated victim with translations snapshotted, ready to scrape."""
    session = BoardSession.boot(input_hw=INPUT_HW)
    run = session.victim_application().launch(VICTIM_MODEL)
    harvester = AddressHarvester(
        session.attacker_shell.procfs, caller=session.attacker_shell.user
    )
    harvested = harvester.harvest(run.pid)
    run.terminate()
    return session, harvested


def _scraper(session, **config_kwargs):
    return MemoryScraper(
        session.attacker_shell.devmem_tool,
        session.attacker_shell.user,
        AttackConfig(**config_kwargs),
    )


def test_campaign_scrape_word_mode(benchmark, harvested_board):
    session, harvested = harvested_board
    dump = benchmark(_scraper(session).scrape, harvested)
    assert dump.nbytes == harvested.length


def test_campaign_scrape_coalesced_mode(benchmark, harvested_board):
    session, harvested = harvested_board
    dump = benchmark(
        _scraper(session, coalesce_reads=True).scrape, harvested
    )
    assert dump.nbytes == harvested.length


def test_batched_beats_word_mode(harvested_board):
    """The acceptance claim: batched extraction wins on dump throughput."""
    session, harvested = harvested_board
    word_scraper = _scraper(session)
    coalesced_scraper = _scraper(session, coalesce_reads=True)

    started = time.perf_counter()
    word_dump = word_scraper.scrape(harvested)
    word_seconds = time.perf_counter() - started

    started = time.perf_counter()
    coalesced_dump = coalesced_scraper.scrape(harvested)
    coalesced_seconds = time.perf_counter() - started

    assert coalesced_dump.data == word_dump.data
    assert coalesced_dump.devmem_reads < word_dump.devmem_reads
    assert coalesced_seconds < word_seconds

    word_mibps = word_dump.nbytes / word_seconds / 1024**2
    coalesced_mibps = coalesced_dump.nbytes / coalesced_seconds / 1024**2
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_campaign_batching.txt").write_text(
        f"word mode:      {word_dump.devmem_reads} devmem reads, "
        f"{word_mibps:.1f} MiB/s\n"
        f"coalesced mode: {coalesced_dump.devmem_reads} devmem reads, "
        f"{coalesced_mibps:.1f} MiB/s\n"
        f"speedup: {word_seconds / coalesced_seconds:.1f}x\n"
    )


def test_campaign_end_to_end_throughput(benchmark):
    """A full 4-board, 8-victim campaign, boots and prep included."""
    spec = CampaignSpec(boards=4, victims=8, seed=11)

    report = benchmark(run_campaign, spec)

    assert report.success_rate == 1.0
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_campaign_throughput.txt").write_text(
        report.throughput.describe() + "\n"
    )


def test_campaign_end_to_end_multiprocess(benchmark):
    """The same fleet sharded across worker processes."""
    spec = CampaignSpec(boards=4, victims=8, seed=11)

    report = benchmark(
        run_campaign, spec, executor="multiprocess", processes=4
    )

    assert report.success_rate == 1.0
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_campaign_multiprocess.txt").write_text(
        report.throughput.describe() + "\n"
    )
