"""Fig. 11 — the model name surfaces in the scraped hexdump.

Times step 4a: signature-database identification over the full dump
(the generalization of the paper's single ``grep "resnet50"``).
"""

from conftest import VICTIM_MODEL, assert_figure_claims

from repro.attack.identify import ModelIdentifier, SignatureDatabase


def test_fig11_model_identification(benchmark, scenario):
    database = SignatureDatabase.from_profiles(scenario.profiles)
    identifier = ModelIdentifier(database)

    result = benchmark(identifier.identify, scenario.report.dump)

    assert result.best_model == VICTIM_MODEL
    assert result.confident
    assert any("resnet50" in hit.row_text for hit in result.grep_hits)
    assert_figure_claims(scenario, "fig11")


def test_fig11_raw_grep(benchmark, scenario):
    """The literal paper operation: grep the hexdump for 'resnet50'."""
    hits = benchmark(scenario.report.dump.hexdump.grep, "resnet50")
    assert hits
