"""Extension — multi-tenant scrubbing hazard (paper §I-B motivation).

The paper argues RowClone/RowReset-style *contiguous* initialization is
unsafe on multi-tenant boards with interleaved allocations: clearing a
dead tenant's physical range also wipes the live co-tenant's pages.
This bench demonstrates the hazard and that per-page (non-contiguous)
scrubbing avoids it.
"""

from conftest import INPUT_HW, OUT_DIR

from repro.evaluation.scenarios import multi_tenant_scrub_experiment


def test_multitenant_scrub_strategies(benchmark):
    outcomes = benchmark.pedantic(
        multi_tenant_scrub_experiment, args=(INPUT_HW,), rounds=1, iterations=1
    )

    by_strategy = {outcome.strategy: outcome for outcome in outcomes}
    lines = [f"{'strategy':<20} {'victim cleared':<16} co-tenant intact"]
    for strategy, outcome in by_strategy.items():
        lines.append(
            f"{strategy:<20} "
            f"{'yes' if outcome.victim_residue_cleared else 'NO':<16} "
            f"{'yes' if outcome.cotenant_data_intact else 'NO'}"
        )
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_multitenant.txt").write_text("\n".join(lines) + "\n")

    # Both strategies clear the residue...
    assert by_strategy["contiguous_range"].victim_residue_cleared
    assert by_strategy["per_page"].victim_residue_cleared
    # ...but contiguous scrubbing collateral-damages the live tenant.
    assert not by_strategy["contiguous_range"].cotenant_data_intact
    assert by_strategy["per_page"].cotenant_data_intact
