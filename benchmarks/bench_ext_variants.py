"""Extension — attack-variant x defense cross-product.

Three attacks with decreasing interface requirements:

- **paper** (pagemap-assisted): needs ps + procfs maps/pagemap + devmem
- **profiled-PA** (no pagemap): needs ps + devmem + a reference board
- **full-scan** (no procfs): needs devmem only

against four boards: vulnerable, physical-ASLR, pagemap-lockdown,
zero-on-free.  The matrix shows why the paper's conclusion points at
sanitization: it is the only single defense that stops all variants.
"""

from conftest import INPUT_HW, OUT_DIR

from repro.attack.identify import SignatureDatabase
from repro.attack.pipeline import MemoryScrapingAttack
from repro.attack.polling import PidPoller
from repro.attack.variants import (
    FullScanAttack,
    ProfiledPhysicalAttack,
    profile_physical_layout,
)
from repro.errors import AttackError, ExtractionError, PermissionDeniedError
from repro.evaluation.scenarios import BoardSession
from repro.petalinux.aslr import LayoutRandomization
from repro.petalinux.kernel import KernelConfig
from repro.petalinux.sanitizer import SanitizePolicy
from repro.vitis.image import Image

BOARDS = [
    ("vulnerable", KernelConfig()),
    (
        "physical-aslr",
        KernelConfig(randomization=LayoutRandomization(physical=True, seed=9)),
    ),
    ("pagemap-lockdown", KernelConfig(pagemap_world_readable=False)),
    ("zero-on-free", KernelConfig(sanitize_policy=SanitizePolicy.ZERO_ON_FREE)),
]

# Which (attack, board) pairs should leak.  Physical ASLR stops only
# the replayed-PA variant; pagemap lockdown only the paper attack;
# sanitization stops everything.
EXPECTED = {
    ("paper", "vulnerable"): True,
    ("paper", "physical-aslr"): True,
    ("paper", "pagemap-lockdown"): False,
    ("paper", "zero-on-free"): False,
    ("profiled-pa", "vulnerable"): True,
    ("profiled-pa", "physical-aslr"): False,
    ("profiled-pa", "pagemap-lockdown"): True,
    ("profiled-pa", "zero-on-free"): False,
    ("full-scan", "vulnerable"): True,
    ("full-scan", "physical-aslr"): True,
    ("full-scan", "pagemap-lockdown"): True,
    ("full-scan", "zero-on-free"): False,
}


def _reference_knowledge():
    reference = BoardSession.boot(input_hw=INPUT_HW)
    profiles = reference.profile(["resnet50_pt", "squeezenet_pt"])
    database = SignatureDatabase.from_profiles(profiles)
    pristine = BoardSession.boot(input_hw=INPUT_HW)
    layout = profile_physical_layout(
        pristine.attacker_shell, "resnet50_pt", input_hw=INPUT_HW
    )
    return profiles, database, layout


def _run_victim(session):
    secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=13).corrupted(0.2)
    run = session.victim_application().launch("resnet50_pt", image=secret)
    return run, secret


def _paper_attack(session, profiles, run) -> bool:
    attack = MemoryScrapingAttack(session.attacker_shell, profiles)
    try:
        report = attack.execute("resnet50_pt", terminate_victim=run.terminate)
    except (PermissionDeniedError, ExtractionError, AttackError):
        if run.alive:
            run.terminate()
        return False
    return report.identification is not None


def _profiled_pa_attack(session, database, layout, run) -> bool:
    run.terminate()
    PidPoller(session.attacker_shell).wait_for_termination(run.pid)
    try:
        outcome = ProfiledPhysicalAttack(
            session.attacker_shell, layout, database
        ).run()
    except ExtractionError:
        return False
    return outcome.leaked


def _full_scan_attack(session, database, profiles, run) -> bool:
    run.terminate()
    PidPoller(session.attacker_shell).wait_for_termination(run.pid)
    try:
        outcome = FullScanAttack(
            session.attacker_shell, database, profiles,
            scan_length=512 * 1024 * 1024, window=16 * 1024 * 1024,
        ).run()
    except ExtractionError:
        return False
    return outcome.leaked


def _run_matrix():
    profiles, database, layout = _reference_knowledge()
    results = {}
    for board_label, config in BOARDS:
        for attack_label in ("paper", "profiled-pa", "full-scan"):
            session = BoardSession.boot(config=config, input_hw=INPUT_HW)
            run, _ = _run_victim(session)
            if attack_label == "paper":
                leaked = _paper_attack(session, profiles, run)
            elif attack_label == "profiled-pa":
                leaked = _profiled_pa_attack(session, database, layout, run)
            else:
                leaked = _full_scan_attack(session, database, profiles, run)
            results[(attack_label, board_label)] = leaked
    return results


def test_variant_defense_matrix(benchmark):
    results = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)

    attacks = ("paper", "profiled-pa", "full-scan")
    lines = [f"{'board':<18}" + "".join(f"{name:>14}" for name in attacks)]
    for board_label, _ in BOARDS:
        row = f"{board_label:<18}"
        for attack_label in attacks:
            leaked = results[(attack_label, board_label)]
            row += f"{'LEAK' if leaked else 'safe':>14}"
        lines.append(row)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_variants.txt").write_text("\n".join(lines) + "\n")

    for key, expected in EXPECTED.items():
        assert results[key] == expected, key
