"""Fig. 8 — virtual_to_physical conversion through the pagemap.

Times the full heap translation harvest (the batched equivalent of
looping the paper's C tool over every heap page).
"""

from conftest import VICTIM_MODEL, assert_figure_claims

from repro.attack.addressing import AddressHarvester


def test_fig08_va_to_pa(benchmark, scenario):
    session = scenario.session
    run = session.victim_application().launch(VICTIM_MODEL, infer=False)
    harvester = AddressHarvester(
        session.attacker_shell.procfs, caller=session.attacker_shell.user
    )

    harvested = benchmark(harvester.harvest, run.pid)

    assert harvested.present_pages()
    for entry in harvested.present_pages():
        assert entry.physical_page_address >= 0x6000_0000
    run.terminate()
    assert_figure_claims(scenario, "fig08")
