"""Fig. 4 — original vs corrupted input image (0xFFFFFF marker).

Regenerates the corrupted-image artifact and times the corruption
operation the victim-side preparation performs.
"""

from conftest import INPUT_HW, assert_figure_claims

from repro.vitis.image import WHITE_MARKER, Image


def test_fig04_corrupted_image(benchmark, scenario):
    original = Image.test_pattern(INPUT_HW, INPUT_HW, seed=7)

    corrupted = benchmark(original.corrupted, 0.2)

    # Row quantization: 0.2 of the height, rounded to whole rows.
    expected = round(INPUT_HW * 0.2) / INPUT_HW
    assert corrupted.marker_fraction(WHITE_MARKER) == expected
    assert_figure_claims(scenario, "fig04")
