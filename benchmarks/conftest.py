"""Shared state for the benchmark suite.

One standard scenario (board boot → profiling → victim → attack) is
prepared once per benchmark session; the per-figure benchmarks time
their step's characteristic operation against it and assert the
figure's claims.  Regenerated artifacts are written to
``benchmarks/out/`` for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.attack.pipeline import AttackReport, MemoryScrapingAttack
from repro.attack.profiling import ProfileStore
from repro.evaluation.figures import FigureArtifact, generate_all_figures
from repro.evaluation.scenarios import BoardSession
from repro.vitis.image import Image

INPUT_HW = 32
VICTIM_MODEL = "resnet50_pt"
OUT_DIR = Path(__file__).parent / "out"


@dataclass
class PreparedScenario:
    """A fully played-out paper scenario plus its leftovers."""

    session: BoardSession
    profiles: ProfileStore
    report: AttackReport
    secret: Image
    figures: dict[str, FigureArtifact]


@pytest.fixture(scope="session")
def scenario() -> PreparedScenario:
    """Run the standard attack once and keep every intermediate."""
    session = BoardSession.boot(input_hw=INPUT_HW)
    profiles = session.profile(
        [VICTIM_MODEL, "squeezenet_pt", "inception_v1_tf"]
    )
    secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=7).corrupted(0.2)
    attack = MemoryScrapingAttack(session.attacker_shell, profiles)
    run = session.victim_application().launch(VICTIM_MODEL, image=secret)
    report = attack.execute(VICTIM_MODEL, terminate_victim=run.terminate)
    figures = generate_all_figures(input_hw=INPUT_HW, victim_model=VICTIM_MODEL)

    OUT_DIR.mkdir(exist_ok=True)
    for figure_id, artifact in sorted(figures.items()):
        (OUT_DIR / f"{figure_id}.txt").write_text(artifact.render() + "\n")
    (OUT_DIR / "attack_report.txt").write_text(report.render() + "\n")
    return PreparedScenario(
        session=session,
        profiles=profiles,
        report=report,
        secret=secret,
        figures=figures,
    )


def assert_figure_claims(scenario: PreparedScenario, figure_id: str) -> None:
    """Fail loudly if any claim of the regenerated figure is violated."""
    artifact = scenario.figures[figure_id]
    failing = [claim for claim, held in artifact.claims.items() if not held]
    assert not failing, f"{figure_id} failing claims: {failing}"
