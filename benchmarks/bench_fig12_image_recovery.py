"""Fig. 12 — marker rows in the dump and input-image reconstruction.

Times step 4b: locating the corrupted-image identifier and slicing the
image out of the dump at the profiled offset.
"""

from conftest import VICTIM_MODEL, assert_figure_claims

from repro.attack.reconstruct import ImageReconstructor


def test_fig12_image_reconstruction(benchmark, scenario):
    reconstructor = ImageReconstructor()
    profile = scenario.profiles.get(VICTIM_MODEL)

    result = benchmark(reconstructor.reconstruct, scenario.report.dump, profile)

    assert result.corruption_marker_seen
    assert result.image.pixel_match_rate(scenario.secret) == 1.0
    assert_figure_claims(scenario, "fig12")


def test_fig12_marker_scan(benchmark, scenario):
    """Just the solid-FFFF-row scan over the whole dump."""
    reconstructor = ImageReconstructor()
    rows = benchmark(reconstructor.find_marker_rows, scenario.report.dump)
    assert rows
