"""Fig. 9 — the victim pid vanishes from ``ps`` after termination.

Times the aliveness poll the attacker spins on while waiting for the
victim to exit.
"""

from conftest import VICTIM_MODEL, assert_figure_claims

from repro.attack.polling import PidPoller


def test_fig09_pid_gone(benchmark, scenario):
    session = scenario.session
    run = session.victim_application().launch(VICTIM_MODEL, infer=False)
    victim_pid = run.pid
    run.terminate()
    poller = PidPoller(session.attacker_shell)

    alive = benchmark(poller.is_alive, victim_pid)

    assert not alive
    assert str(victim_pid) not in session.attacker_shell.ps_ef()
    assert_figure_claims(scenario, "fig09")
