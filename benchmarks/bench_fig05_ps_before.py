"""Fig. 5 — ``ps -ef`` before the victim runs (attacker's baseline).

Times one process-list snapshot from the attacker terminal.
"""

from conftest import VICTIM_MODEL, assert_figure_claims


def test_fig05_ps_before(benchmark, scenario):
    attacker_shell = scenario.session.attacker_shell

    listing = benchmark(attacker_shell.ps_ef)

    assert "kworker" in listing
    # The victim has terminated by now, so the live list is victim-free
    # just like the pre-launch baseline.
    assert VICTIM_MODEL not in listing
    assert_figure_claims(scenario, "fig05")
