"""Fig. 10 — ``devmem`` reads of the terminated process's residue.

Times one page of word-granular devmem reads (1024 invocations), the
unit of work step 3 repeats over every harvested heap page.  The bench
plays out its own victim so the residue it reads is not perturbed by
the other benchmarks sharing the session board.
"""

from conftest import VICTIM_MODEL, assert_figure_claims

import pytest

from repro.attack.addressing import AddressHarvester
from repro.mmu.paging import PAGE_SIZE


@pytest.fixture()
def fresh_residue(scenario):
    """A just-terminated victim: (first heap page PA, its true bytes)."""
    session = scenario.session
    run = session.victim_application().launch(VICTIM_MODEL)
    harvester = AddressHarvester(
        session.attacker_shell.procfs, caller=session.attacker_shell.user
    )
    harvested = harvester.harvest(run.pid)
    ground_truth = run.process.address_space.read_virtual(
        harvested.heap_start, PAGE_SIZE
    )
    run.terminate()
    first_page = harvested.present_pages()[0]
    return first_page.physical_page_address, ground_truth


def test_fig10_devmem_page_read(benchmark, scenario, fresh_residue):
    physical_address, ground_truth = fresh_residue
    attacker_shell = scenario.session.attacker_shell

    words = benchmark(
        attacker_shell.devmem_tool.read_range,
        physical_address,
        PAGE_SIZE,
        attacker_shell.user,
    )

    assert len(words) == PAGE_SIZE // 4
    assert words[0] == int.from_bytes(ground_truth[:4], "little")
    assert_figure_claims(scenario, "fig10")
