"""Fig. 6 — ``ps -ef`` with the victim running; pid observed cross-user.

Times step 1's find-victim poll against a board with a live victim.
"""

from conftest import INPUT_HW, VICTIM_MODEL, assert_figure_claims

from repro.attack.polling import PidPoller


def test_fig06_pid_observed(benchmark, scenario):
    session = scenario.session
    run = session.victim_application().launch(VICTIM_MODEL, infer=False)
    poller = PidPoller(session.attacker_shell)

    sighting = benchmark(poller.find_victim, VICTIM_MODEL)

    assert sighting is not None
    assert sighting.pid == run.pid
    assert "resnet50_pt.xmodel" in sighting.cmdline
    run.terminate()
    assert_figure_claims(scenario, "fig06")
