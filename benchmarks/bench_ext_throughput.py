"""Extension — scraping throughput: per-word devmem vs bulk reads.

The paper automates one ``devmem`` invocation per 32-bit word; a
smarter attacker mmaps /dev/mem and reads pages at once.  Both modes
produce identical bytes (asserted in the test suite); this bench
quantifies the speed gap on the same harvested range.
"""

from conftest import INPUT_HW, OUT_DIR, VICTIM_MODEL

import pytest

from repro.attack.addressing import AddressHarvester
from repro.attack.config import AttackConfig
from repro.attack.extraction import MemoryScraper
from repro.evaluation.scenarios import BoardSession


@pytest.fixture(scope="module")
def harvested_board():
    """A terminated victim with translations snapshotted, ready to scrape."""
    session = BoardSession.boot(input_hw=INPUT_HW)
    run = session.victim_application().launch(VICTIM_MODEL)
    harvester = AddressHarvester(
        session.attacker_shell.procfs, caller=session.attacker_shell.user
    )
    harvested = harvester.harvest(run.pid)
    run.terminate()
    return session, harvested


def test_scrape_throughput_word_mode(benchmark, harvested_board):
    session, harvested = harvested_board
    scraper = MemoryScraper(
        session.attacker_shell.devmem_tool,
        session.attacker_shell.user,
        AttackConfig(bulk_reads=False),
    )

    dump = benchmark(scraper.scrape, harvested)

    assert dump.nbytes == harvested.length
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_throughput_word.txt").write_text(
        f"word mode: {dump.devmem_reads} devmem reads for {dump.nbytes} bytes\n"
    )


def test_scrape_throughput_bulk_mode(benchmark, harvested_board):
    session, harvested = harvested_board
    scraper = MemoryScraper(
        session.attacker_shell.devmem_tool,
        session.attacker_shell.user,
        AttackConfig(bulk_reads=True),
    )

    dump = benchmark(scraper.scrape, harvested)

    assert dump.nbytes == harvested.length
    (OUT_DIR / "ext_throughput_bulk.txt").write_text(
        f"bulk mode: {dump.devmem_reads} reads for {dump.nbytes} bytes\n"
    )
