"""Extension — private weight extraction from scraped dumps.

The victim runs a *fine-tuned* library model (same architecture,
private weights).  The adversary profiles buffer offsets with the
stock model and lifts the victim's weights from the dump — the paper's
"revealing sensitive information such as input images and weights".
"""

from conftest import INPUT_HW, OUT_DIR

from repro.attack.addressing import AddressHarvester
from repro.attack.extraction import MemoryScraper
from repro.attack.weights import WeightExtractor, profile_weight_layout
from repro.evaluation.scenarios import BoardSession
from repro.vitis.zoo import build_model, fine_tune

PROFILED_MODELS = ("resnet50_pt", "squeezenet_pt", "mobilenet_v2_tf")


def _extract_for(session, model_name):
    layout = profile_weight_layout(
        session.attacker_shell, model_name, input_hw=INPUT_HW
    )
    stock = build_model(model_name, input_hw=INPUT_HW)
    private = fine_tune(stock, seed=1234)
    run = session.victim_application().launch(model_name, model=private)
    harvester = AddressHarvester(
        session.attacker_shell.procfs, caller=session.attacker_shell.user
    )
    harvested = harvester.harvest(run.pid)
    run.terminate()
    dump = MemoryScraper(
        session.attacker_shell.devmem_tool, session.attacker_shell.user
    ).scrape(harvested)
    extracted = WeightExtractor(layout).extract(dump)
    return (
        extracted.match_fraction(private),
        extracted.match_fraction(stock),
        layout.total_nbytes(),
    )


def _run_all():
    session = BoardSession.boot(input_hw=INPUT_HW)
    return {name: _extract_for(session, name) for name in PROFILED_MODELS}


def test_weight_extraction(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    lines = [f"{'model':<18} {'vs victim':<10} {'vs stock':<9} weight bytes"]
    for name, (vs_private, vs_stock, nbytes) in results.items():
        lines.append(f"{name:<18} {vs_private:<10.3f} {vs_stock:<9.3f} {nbytes}")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_weights.txt").write_text("\n".join(lines) + "\n")

    for name, (vs_private, vs_stock, _) in results.items():
        # Bit-exact recovery of the private weights...
        assert vs_private == 1.0, name
        # ...that are demonstrably not the public library weights.
        assert vs_stock < 0.5, name
