"""Extension — defense ablation matrix (paper §VI discussion).

Runs the full attack against each single-knob hardening and the fully
hardened kernel, recording which step each defense kills.  The
qualitative expectations:

- the vulnerable default leaks model + image;
- sanitization (sync or drained pool) defeats the analysis step;
- pagemap lockdown defeats address harvesting;
- STRICT_DEVMEM defeats extraction;
- either ASLR alone does NOT stop the pagemap-assisted paper attack.
"""

from pathlib import Path

from conftest import INPUT_HW, OUT_DIR

from repro.evaluation.scenarios import attack_under_config
from repro.petalinux.aslr import LayoutRandomization
from repro.petalinux.kernel import KernelConfig
from repro.petalinux.sanitizer import SanitizePolicy
from repro.petalinux.xen import two_guest_deployment

CONFIGS = [
    ("vulnerable-default", KernelConfig(), True),
    (
        "zero-on-free",
        KernelConfig(sanitize_policy=SanitizePolicy.ZERO_ON_FREE),
        False,
    ),
    (
        "pagemap-lockdown",
        KernelConfig(pagemap_world_readable=False),
        False,
    ),
    (
        "procfs-lockdown",
        KernelConfig(procfs_world_readable=False),
        False,
    ),
    (
        "strict-devmem",
        KernelConfig(devmem_unrestricted=False),
        False,
    ),
    (
        "physical-aslr-only",
        KernelConfig(randomization=LayoutRandomization(physical=True, seed=3)),
        True,
    ),
    (
        "virtual-aslr-only",
        KernelConfig(randomization=LayoutRandomization(virtual=True, seed=3)),
        True,
    ),
    (
        "xen-passthrough",
        KernelConfig(xen=two_guest_deployment(dev_mem_passthrough=True)),
        True,
    ),
    (
        "xen-confined",
        KernelConfig(xen=two_guest_deployment(dev_mem_passthrough=False)),
        False,
    ),
    ("fully-hardened", KernelConfig().hardened(), False),
]


def _run_matrix():
    return [
        (label, attack_under_config(config, label, input_hw=INPUT_HW), expected)
        for label, config, expected in CONFIGS
    ]


def test_defense_matrix(benchmark):
    results = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)

    lines = [f"{'config':<22} {'steps':<6} {'failed at':<26} leak"]
    for label, outcome, expected in results:
        lines.append(
            f"{label:<22} {outcome.steps_completed:<6} "
            f"{outcome.failed_step or '-':<26} "
            f"{'YES' if outcome.attack_succeeded else 'no'}"
        )
        assert outcome.attack_succeeded == expected, (label, outcome.detail)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "ext_defenses.txt").write_text("\n".join(lines) + "\n")
