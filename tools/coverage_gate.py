#!/usr/bin/env python3
"""The ``make coverage`` gate: per-package coverage floors.

Runs the gated test modules under coverage measurement and fails when
any gated package's aggregate coverage drops below :data:`FLOOR`
percent.  Four packages are gated:

- ``repro.fuzzlab`` — the fuzz harness is the machinery that vouches
  for everything else, so it does not get to rot quietly;
- ``repro.analysis`` — the zero-copy fast paths every oracle, campaign
  and benchmark lean on;
- ``repro.service`` — the ingest daemon's admission-control and
  drain paths mostly matter under rare conditions (quota refusals,
  full queues, SIGTERM mid-job), exactly the code a green happy-path
  suite can quietly stop exercising;
- ``repro.explore`` — the frontier reports it emits are cited as
  ground truth by the docs, and its byte-determinism promise is
  exactly the kind of property that silently erodes without tests.

Two measurement backends, picked automatically:

- **coverage.py** (preferred, when installed): branch coverage,
  ``Coverage(branch=True)``, scoped to the gated package directories;
- **stdlib fallback** (this repo adds no dependencies): a
  ``sys.settrace`` line tracer scoped to the same files, with the
  executable-line denominator derived from each module's AST.  Line
  coverage only — install ``coverage`` for branch numbers.

Either way the output ends with one markdown summary table per gated
package, as documented in ``docs/testing.md`` (no badges, no
services), and the exit status enforces the floor independently per
package: 0 = every package at or above, 1 = any below (or the tests
themselves failed).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

PACKAGES: dict[str, Path] = {
    "repro.fuzzlab": SRC_ROOT / "repro" / "fuzzlab",
    "repro.analysis": SRC_ROOT / "repro" / "analysis",
    "repro.service": SRC_ROOT / "repro" / "service",
    "repro.explore": SRC_ROOT / "repro" / "explore",
}

TEST_TARGETS = (
    "tests/test_fuzzlab.py",
    "tests/test_analysis_scan.py",
    "tests/test_zero_copy.py",
    "tests/test_service.py",
    "tests/test_explore.py",
)

FLOOR = 80.0
"""Minimum aggregate coverage (percent), enforced per package."""

Rows = dict[str, dict[str, tuple[int, int]]]
"""package name -> module file name -> (covered, possible)."""


def _package_files(package_dir: Path) -> list[Path]:
    return sorted(package_dir.glob("*.py"))


def _package_of(path: Path) -> str | None:
    for package, package_dir in PACKAGES.items():
        if path.parent == package_dir:
            return package
    return None


def _run_tests() -> int:
    import pytest

    return pytest.main(
        ["-q", "-x", *(str(REPO_ROOT / target) for target in TEST_TARGETS)]
    )


def _executable_lines(path: Path) -> set[int]:
    """Line numbers the fallback tracer can be held to.

    Every statement's first line, except docstring expressions (they
    execute at import time whether or not anything is 'covered') —
    derived from the AST, so the denominator tracks the code, not a
    guess.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    docstrings: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = getattr(node, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                docstrings.add(body[0].lineno)
    lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt) and node.lineno not in docstrings:
            lines.add(node.lineno)
    return lines


def _measure_with_coverage_py() -> tuple[Rows, str]:
    """Branch-coverage measurement via coverage.py.

    Numbers come from the JSON report so branch arcs genuinely count:
    covered = covered_lines + covered_branches, possible =
    num_statements + num_branches per file.
    """
    import json
    import tempfile

    import coverage

    cov = coverage.Coverage(
        branch=True,
        include=[str(package_dir / "*") for package_dir in PACKAGES.values()],
    )
    cov.start()
    try:
        status = _run_tests()
    finally:
        cov.stop()
    if status != 0:
        raise SystemExit(status)
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json") as report:
        cov.json_report(outfile=report.name)
        payload = json.load(open(report.name))
    summaries = {
        Path(file_path).resolve(): entry["summary"]
        for file_path, entry in payload["files"].items()
    }
    rows: Rows = {}
    for package, package_dir in PACKAGES.items():
        rows[package] = {}
        for path in _package_files(package_dir):
            summary = summaries.get(
                path.resolve(),
                {"covered_lines": 0, "num_statements": 0,
                 "covered_branches": 0, "num_branches": 0},
            )
            rows[package][path.name] = (
                summary["covered_lines"] + summary.get("covered_branches", 0),
                summary["num_statements"] + summary.get("num_branches", 0),
            )
    return rows, "line+branch (coverage.py)"


def _measure_with_tracer() -> tuple[Rows, str]:
    """Line-coverage measurement with a stdlib settrace tracer."""
    targets = {
        str(path): path
        for package_dir in PACKAGES.values()
        for path in _package_files(package_dir)
    }
    executed: dict[str, set[int]] = {name: set() for name in targets}

    def local_trace(frame, event, arg):
        if event == "line":
            executed[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        if event == "call" and frame.f_code.co_filename in targets:
            return local_trace
        return None

    import threading

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        status = _run_tests()
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]
    if status != 0:
        raise SystemExit(status)
    rows: Rows = {}
    for package, package_dir in PACKAGES.items():
        rows[package] = {}
        for path in _package_files(package_dir):
            lines = _executable_lines(path)
            rows[package][path.name] = (
                len(lines & executed[str(path)]),
                len(lines),
            )
    return rows, "line (stdlib tracer; install coverage.py for branch)"


def _report_package(
    package: str, modules: dict[str, tuple[int, int]], mode: str
) -> float:
    covered_total = sum(covered for covered, _ in modules.values())
    possible_total = sum(possible for _, possible in modules.values())
    percent = 100.0 * covered_total / possible_total if possible_total else 0.0
    print()
    print(f"{package} coverage — {mode}")
    print()
    print("| module | covered | of | % |")
    print("| --- | ---: | ---: | ---: |")
    for name in sorted(modules):
        covered, possible = modules[name]
        share = 100.0 * covered / possible if possible else 100.0
        print(f"| `{name}` | {covered} | {possible} | {share:.1f} |")
    print(
        f"| **total** | **{covered_total}** | **{possible_total}** "
        f"| **{percent:.1f}** |"
    )
    return percent


def main() -> int:
    sys.path.insert(0, str(SRC_ROOT))
    try:
        import coverage  # noqa: F401 — availability probe only

        rows, mode = _measure_with_coverage_py()
    except ImportError:
        rows, mode = _measure_with_tracer()

    failures = []
    for package in sorted(rows):
        percent = _report_package(package, rows[package], mode)
        if percent < FLOOR:
            failures.append((package, percent))

    print()
    if failures:
        for package, percent in failures:
            print(
                f"coverage gate: {percent:.1f}% is below the "
                f"{FLOOR:.0f}% floor on {package}",
                file=sys.stderr,
            )
        return 1
    print(
        f"coverage gate: every gated package >= {FLOOR:.0f}% floor — ok"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
