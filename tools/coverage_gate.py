#!/usr/bin/env python3
"""The ``make coverage`` gate: a coverage floor on ``repro.fuzzlab``.

Runs the fuzzlab test module under coverage measurement and fails when
the package's aggregate coverage drops below :data:`FLOOR` percent —
the fuzz harness is the machinery that vouches for everything else, so
it does not get to rot quietly.

Two measurement backends, picked automatically:

- **coverage.py** (preferred, when installed): branch coverage,
  ``Coverage(branch=True)``, scoped to ``src/repro/fuzzlab``;
- **stdlib fallback** (this repo adds no dependencies): a
  ``sys.settrace`` line tracer scoped to the same files, with the
  executable-line denominator derived from each module's AST.  Line
  coverage only — install ``coverage`` for branch numbers.

Either way the output ends with the markdown summary table documented
in ``docs/testing.md`` (one row per fuzzlab module — no badges, no
services), and the exit status enforces the floor: 0 = at or above,
1 = below (or the tests themselves failed).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
PACKAGE_DIR = SRC_ROOT / "repro" / "fuzzlab"
TEST_TARGET = "tests/test_fuzzlab.py"

FLOOR = 80.0
"""Minimum aggregate coverage (percent) of ``repro.fuzzlab``."""


def _target_files() -> list[Path]:
    return sorted(PACKAGE_DIR.glob("*.py"))


def _run_tests() -> int:
    import pytest

    return pytest.main(["-q", "-x", str(REPO_ROOT / TEST_TARGET)])


def _executable_lines(path: Path) -> set[int]:
    """Line numbers the fallback tracer can be held to.

    Every statement's first line, except docstring expressions (they
    execute at import time whether or not anything is 'covered') —
    derived from the AST, so the denominator tracks the code, not a
    guess.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    docstrings: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = getattr(node, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                docstrings.add(body[0].lineno)
    lines: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt) and node.lineno not in docstrings:
            lines.add(node.lineno)
    return lines


def _measure_with_coverage_py() -> tuple[dict[str, tuple[int, int]], str]:
    """Branch-coverage measurement via coverage.py.

    Numbers come from the JSON report so branch arcs genuinely count:
    covered = covered_lines + covered_branches, possible =
    num_statements + num_branches per file.
    """
    import json
    import tempfile

    import coverage

    cov = coverage.Coverage(
        branch=True, include=[str(PACKAGE_DIR / "*")]
    )
    cov.start()
    try:
        status = _run_tests()
    finally:
        cov.stop()
    if status != 0:
        raise SystemExit(status)
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json") as report:
        cov.json_report(outfile=report.name)
        payload = json.load(open(report.name))
    summaries = {
        Path(file_path).name: entry["summary"]
        for file_path, entry in payload["files"].items()
    }
    rows = {}
    for path in _target_files():
        summary = summaries.get(
            path.name,
            {"covered_lines": 0, "num_statements": 0,
             "covered_branches": 0, "num_branches": 0},
        )
        rows[path.name] = (
            summary["covered_lines"] + summary.get("covered_branches", 0),
            summary["num_statements"] + summary.get("num_branches", 0),
        )
    return rows, "line+branch (coverage.py)"


def _measure_with_tracer() -> tuple[dict[str, tuple[int, int]], str]:
    """Line-coverage measurement with a stdlib settrace tracer."""
    targets = {str(path): path for path in _target_files()}
    executed: dict[str, set[int]] = {name: set() for name in targets}

    def local_trace(frame, event, arg):
        if event == "line":
            executed[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        if event == "call" and frame.f_code.co_filename in targets:
            return local_trace
        return None

    import threading

    threading.settrace(global_trace)
    sys.settrace(global_trace)
    try:
        status = _run_tests()
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]
    if status != 0:
        raise SystemExit(status)
    rows = {}
    for name, path in targets.items():
        lines = _executable_lines(path)
        rows[path.name] = (len(lines & executed[name]), len(lines))
    return rows, "line (stdlib tracer; install coverage.py for branch)"


def main() -> int:
    sys.path.insert(0, str(SRC_ROOT))
    try:
        import coverage  # noqa: F401 — availability probe only

        rows, mode = _measure_with_coverage_py()
    except ImportError:
        rows, mode = _measure_with_tracer()

    covered_total = sum(covered for covered, _ in rows.values())
    possible_total = sum(possible for _, possible in rows.values())
    percent = 100.0 * covered_total / possible_total if possible_total else 0.0

    print()
    print(f"repro.fuzzlab coverage — {mode}")
    print()
    print("| module | covered | of | % |")
    print("| --- | ---: | ---: | ---: |")
    for name in sorted(rows):
        covered, possible = rows[name]
        share = 100.0 * covered / possible if possible else 100.0
        print(f"| `{name}` | {covered} | {possible} | {share:.1f} |")
    print(
        f"| **total** | **{covered_total}** | **{possible_total}** "
        f"| **{percent:.1f}** |"
    )
    print()
    if percent < FLOOR:
        print(
            f"coverage gate: {percent:.1f}% is below the "
            f"{FLOOR:.0f}% floor on repro.fuzzlab",
            file=sys.stderr,
        )
        return 1
    print(f"coverage gate: {percent:.1f}% >= {FLOOR:.0f}% floor — ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
