#!/usr/bin/env python3
"""The ``make serve-smoke`` lane: the analysis daemon as a real process.

The in-process soak test exercises the protocol exhaustively with a
manual clock; this lane covers what it cannot — the operator-facing
plumbing.  A real ``repro serve analysis`` subprocess on an ephemeral
port, driven over a real localhost socket by two concurrent clients
plus a streaming subscriber:

1. client A uploads a dump, re-uploads it (the spool must answer
   ``deduplicated``), and submits it for analysis;
2. client B uploads two large dumps back-to-back so the second one
   *must* trip the default per-tenant byte quota, then heals by
   waiting out the daemon's ``retry_after`` hint and submits both;
3. a subscriber collects streamed deltas; the daemon is then SIGTERMed
   and must drain cleanly — every accepted job's delta arrives before
   the terminal ``drained`` event, the process exits 0, and the
   ``-o`` report it writes covers exactly the unique dumps analyzed.

Exit status: 0 = all of the above held, 1 = any check failed, with the
daemon's output replayed to stderr for triage.
"""

from __future__ import annotations

import asyncio
import json
import random
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import AsyncServiceClient  # noqa: E402

MODELS = "resnet50_pt,squeezenet_pt"
INPUT_HW = "32"
SMOKE_TIMEOUT = 60.0
"""Hard wall for every blocking step; the lane should finish in a few
seconds, so anything near this is already a hang."""

BIG_NBYTES = 700_000
"""Two of these from one tenant exceed the default 1 MiB upload burst,
so the second upload is guaranteed a quota refusal; the deficit refills
at 256 KiB/s, keeping the healing wait under two seconds."""


def _blob(seed: int, nbytes: int) -> bytes:
    """Deterministic noise around a verbatim model-name string, so the
    analyzer has something to identify without needing a board."""
    rng = random.Random(seed)
    marker = b"/usr/share/vitis_ai_library/models/resnet50_pt\x00"
    noise = bytes(rng.randrange(256) for _ in range(nbytes - len(marker)))
    half = len(noise) // 2
    return noise[:half] + marker + noise[half:]


async def _client_a(host: str, port: int, checks: dict) -> list[int]:
    blob = _blob(seed=1, nbytes=120_000)
    async with await AsyncServiceClient.connect(host, port) as client:
        first = await client.put_dump("smoke-a", blob)
        assert first.get("ok"), first
        again = await client.put_dump("smoke-a", blob)
        assert again.get("ok"), again
        if again["deduplicated"]:
            checks["dedup_hits"] += 1
        submitted = await client.request(
            "submit", tenant="smoke-a", sha256=first["sha256"]
        )
        assert submitted.get("ok"), submitted
        return [submitted["job_id"]]


async def _client_b(host: str, port: int, checks: dict) -> list[int]:
    blobs = [_blob(seed=2, nbytes=BIG_NBYTES), _blob(seed=3, nbytes=BIG_NBYTES)]
    job_ids = []
    async with await AsyncServiceClient.connect(host, port) as client:
        digests = []
        for blob in blobs:
            for _ in range(5):
                response = await client.put_dump("smoke-b", blob)
                if response.get("ok"):
                    digests.append(response["sha256"])
                    break
                assert response["code"] == "quota", response
                checks["quota_rejections"] += 1
                await asyncio.sleep(min(response["retry_after"], 5.0) + 0.05)
            else:
                raise AssertionError("upload never healed past the quota")
        for digest in digests:
            submitted = await client.request(
                "submit", tenant="smoke-b", sha256=digest
            )
            assert submitted.get("ok"), submitted
            job_ids.append(submitted["job_id"])
    return job_ids


async def _subscribe(host: str, port: int, events: list) -> None:
    async with await AsyncServiceClient.connect(host, port) as client:
        async for event in client.subscribe():
            events.append(event)


async def _scenario(host: str, port: int, daemon: subprocess.Popen) -> dict:
    checks = {"quota_rejections": 0, "dedup_hits": 0}
    events: list = []
    subscriber = asyncio.create_task(_subscribe(host, port, events))
    await asyncio.sleep(0.1)  # let the subscription register
    job_lists = await asyncio.wait_for(
        asyncio.gather(
            _client_a(host, port, checks), _client_b(host, port, checks)
        ),
        timeout=SMOKE_TIMEOUT,
    )
    daemon.send_signal(signal.SIGTERM)
    await asyncio.wait_for(subscriber, timeout=SMOKE_TIMEOUT)
    checks["accepted_jobs"] = sorted(
        job_id for jobs in job_lists for job_id in jobs
    )
    checks["events"] = events
    return checks


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve_smoke_") as tmp:
        tmp_path = Path(tmp)
        report_path = tmp_path / "report.json"
        daemon = subprocess.Popen(
            [
                sys.executable, "-m", "repro",
                "serve", "analysis",
                "--port", "0",
                "--models", MODELS,
                "--input-hw", INPUT_HW,
                "--spool-dir", str(tmp_path / "spool"),
                "-o", str(report_path),
            ],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        assert daemon.stdout is not None
        banner = daemon.stdout.readline()
        if "listening on" not in banner:
            daemon.kill()
            output, _ = daemon.communicate()
            print(banner + output, file=sys.stderr)
            print("serve-smoke: daemon never came up", file=sys.stderr)
            return 1
        address = banner.rsplit(" ", 1)[-1].strip()
        host, port = address.rsplit(":", 1)
        print(f"daemon up at {address}")

        started = time.monotonic()
        try:
            checks = asyncio.run(_scenario(host, int(port), daemon))
        except Exception as error:  # noqa: BLE001 — triage surface
            daemon.kill()
            output, _ = daemon.communicate()
            print(output, file=sys.stderr)
            print(f"serve-smoke: scenario failed: {error!r}", file=sys.stderr)
            return 1
        output, _ = daemon.communicate(timeout=SMOKE_TIMEOUT)

        failures: list[str] = []
        if daemon.returncode != 0:
            failures.append(f"daemon exited {daemon.returncode}, expected 0")
        if "drained:" not in output:
            failures.append("daemon output never announced the drain")
        if checks["quota_rejections"] < 1:
            failures.append("the byte quota never rejected an upload")
        if checks["dedup_hits"] < 1:
            failures.append("the duplicate upload was not deduplicated")
        deltas = [e for e in checks["events"] if e.get("event") == "delta"]
        if sorted(e["job_id"] for e in deltas) != checks["accepted_jobs"]:
            failures.append(
                f"streamed deltas {sorted(e['job_id'] for e in deltas)} != "
                f"accepted jobs {checks['accepted_jobs']} — the drain lost "
                f"or invented work"
            )
        if not checks["events"] or checks["events"][-1].get("event") != "drained":
            failures.append("subscriber never saw the terminal drained event")
        try:
            report = json.loads(report_path.read_text())
            if report["total"] != 3:
                failures.append(
                    f"report covers {report['total']} dump(s), expected 3"
                )
        except (OSError, json.JSONDecodeError, KeyError) as error:
            failures.append(f"report unreadable: {error!r}")

        if failures:
            print(output, file=sys.stderr)
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            f"serve-smoke: PASS in {time.monotonic() - started:.1f}s — "
            f"{len(checks['accepted_jobs'])} job(s) analyzed across 2 "
            f"clients, {checks['quota_rejections']} quota rejection(s) "
            f"healed, duplicate upload deduplicated, SIGTERM drained "
            f"cleanly"
        )
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
