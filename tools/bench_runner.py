#!/usr/bin/env python3
"""The ``make bench-json`` gate: verify the scan core, record the trajectory.

Builds a deterministic multi-megabyte dump (zero, quantized-weight,
random, text and marker sections — the mix a real victim heap shows)
plus a multi-model signature database, then:

1. verifies every fast path against its reference implementation from
   :mod:`repro.analysis.reference` — byte-identical region maps,
   identical identification scores, identical window classifications
   (empty / all-zero / single-byte / partial-trailing-window edges
   included), identical ``region_at`` lookups and residue counts —
   plus the zero-copy lanes: the pooled coalesced scrape must produce
   a dump byte-identical to the per-page reference strategy, and the
   mmap-backed spool read must score identically to the slurped read.
   **Any divergence exits nonzero without timing anything.**
2. times fast vs. reference (best-of-``--repeats`` wall clock) and an
   end-to-end fleet campaign — in-process and multiprocess twins on
   the same 4-board spec, plus a ``campaign_fabric`` lane serving the
   spec through the distributed coordinator to racing localhost
   workers, and an ``explore`` lane timing a bounded evolutionary
   search (generations/s through the real campaign engine) — and
   writes the results to ``BENCH_analysis.json`` so the perf
   trajectory is committed and comparable PR-over-PR.

Exit status: 0 = verified and recorded, 2 = a fast path diverged from
its reference or the multiprocess executor regressed below the
in-process twin (``speedup_vs_inprocess < 1.0``).  See
``docs/performance.md`` for how to read the file.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.analysis.reference import (  # noqa: E402
    reference_map_dump,
    reference_match,
    reference_nonzero_bytes,
    reference_classify_window,
    reference_region_at,
)
from repro.analysis.scan import ScanCore, nonzero_count  # noqa: E402
from repro.attack.addressing import AddressHarvester  # noqa: E402
from repro.attack.carving import DumpCartographer  # noqa: E402
from repro.attack.config import AttackConfig  # noqa: E402
from repro.attack.extraction import MemoryScraper, ScrapedDump  # noqa: E402
from repro.attack.identify import ModelSignature, SignatureDatabase  # noqa: E402
from repro.campaign import CampaignSpec, prepare_offline, run_campaign  # noqa: E402
from repro.campaign.runtime import DumpSpool  # noqa: E402
from repro.campaign.runtime.executors import (  # noqa: E402
    InProcessExecutor,
    MultiprocessExecutor,
)
from repro.campaign.runtime.fabric import (  # noqa: E402
    FabricCoordinator,
    FabricWorker,
)

FABRIC_WORKERS = 2
"""Concurrent workers the ``campaign_fabric`` bench lane runs against
the coordinator (threads over a real localhost socket)."""
from repro.evaluation.scenarios import BoardSession  # noqa: E402
from repro.utils.buffers import BufferPool  # noqa: E402

SEED = 20240315
MODELS = 12
TOKENS_PER_MODEL = 40


def build_database(rng: np.random.Generator) -> list[ModelSignature]:
    """Zoo-scale signatures of path/kernel-style tokens."""
    signatures = []
    for index in range(MODELS):
        model = f"model{index:02d}_pt"
        tokens = set()
        for j in range(TOKENS_PER_MODEL // 2):
            tokens.add(
                f"/usr/share/vitis_ai_library/models/{model}/layer_{j:03d}.params"
            )
        for j in range(TOKENS_PER_MODEL - len(tokens)):
            tokens.add(f"{model}_kernel_{j:03d}_fix{int(rng.integers(1000)):03d}")
        signatures.append(
            ModelSignature(model_name=model, tokens=frozenset(tokens))
        )
    return signatures


def build_dump(mib: float, database: list[ModelSignature],
               rng: np.random.Generator) -> bytes:
    """A deterministic dump with the section mix of a real victim heap.

    The "victim" (model 5) leaves all of its tokens in the text
    sections; every other model leaves a couple of stray tokens, so
    identification scores are non-trivial in both directions.
    """
    victim = database[5]
    strays = [sorted(sig.tokens)[:2] for sig in database if sig is not victim]
    text = bytearray()
    for token in sorted(victim.tokens):
        text += token.encode() + b"\x00"
    for pair in strays:
        for token in pair:
            text += token.encode() + b"\x00"
    text += b"/usr/lib/libvart-runner.so.3\x00/etc/vart.conf\x00" * 40

    target = int(mib * 1024 * 1024)
    parts: list[bytes] = []
    size = 0
    while size < target:
        section = [
            bytes(256 * 1024),  # scrubbed / never-written slack
            rng.integers(-12, 13, size=512 * 1024, dtype=np.int8).tobytes(),
            rng.integers(0, 256, size=192 * 1024, dtype=np.uint8).tobytes(),  # runtime structures
            bytes(text[: 48 * 1024]),  # metadata strings
            b"\xff" * (32 * 1024),  # marker block
        ]
        for chunk in section:
            parts.append(chunk)
            size += len(chunk)
    # Odd tail so the partial-trailing-window path is always exercised.
    parts.append(rng.integers(0, 256, size=777, dtype=np.uint8).tobytes())
    return b"".join(parts)


def build_extraction_scenario():
    """A harvested victim heap on a booted board, post-termination.

    Returns ``(session, harvested)`` — everything a
    :class:`MemoryScraper` needs to replay the extraction, so the
    bench can time read strategies against the same physical pages.
    """
    session = BoardSession.boot()
    run = session.victim_application().launch("resnet50_pt")
    harvester = AddressHarvester(
        session.attacker_shell.procfs, caller=session.attacker_shell.user
    )
    harvested = harvester.harvest(run.pid)
    run.terminate()
    return session, harvested


def best_of(repeats: int, fn, *args) -> tuple[float, object]:
    """Best wall-clock seconds over *repeats* runs, plus the result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


def verify(dump: bytes, cartographer: DumpCartographer,
           database: SignatureDatabase,
           rng: np.random.Generator) -> list[str]:
    """Every fast-path-vs-reference divergence, as printable strings."""
    failures: list[str] = []

    fast_regions = cartographer.map_dump(dump)
    ref_regions = reference_map_dump(dump)
    if fast_regions != ref_regions:
        failures.append(
            f"map_dump diverged: {len(fast_regions)} fast regions vs "
            f"{len(ref_regions)} reference"
        )

    if database.match(dump) != reference_match(database, dump):
        failures.append("SignatureDatabase.match diverged from in-scan reference")

    if nonzero_count(dump) != reference_nonzero_bytes(dump):
        failures.append("nonzero_count diverged from per-byte reference")

    edges = [b"", b"\x00", b"\x00" * 256, b"\x7f", b"\xfe" * 300]
    for _ in range(64):
        length = int(rng.integers(1, 512))
        edges.append(rng.integers(0, 256, size=length, dtype=np.uint8).tobytes())
    for window in edges:
        fast_kind = cartographer.classify_window(window)
        ref_kind = reference_classify_window(window)
        if fast_kind is not ref_kind:
            failures.append(
                f"classify_window diverged on {len(window)}-byte window: "
                f"{fast_kind} vs {ref_kind}"
            )

    offsets = [0, len(dump) - 1] + [
        int(rng.integers(len(dump))) for _ in range(256)
    ]
    for offset in offsets:
        if cartographer.region_at(fast_regions, offset) != reference_region_at(
            ref_regions, offset
        ):
            failures.append(f"region_at diverged at offset {offset:#x}")
    for outside in (-1, len(dump), len(dump) + 512):
        for lookup in (cartographer.region_at, reference_region_at):
            try:
                lookup(fast_regions, outside)
            except ValueError:
                continue
            failures.append(f"region_at({outside:#x}) failed to raise")
    return failures


def verify_zero_copy(pooled_dump: ScrapedDump, reference_dump: ScrapedDump,
                     spool: DumpSpool, digest: str, dump: bytes) -> list[str]:
    """Divergences in the zero-copy extraction and spool-read paths."""
    failures: list[str] = []
    if bytes(pooled_dump.data) != reference_dump.data:
        failures.append(
            "pooled coalesced scrape diverged from per-page reference dump"
        )
    if pooled_dump.devmem_reads > reference_dump.devmem_reads:
        failures.append(
            f"coalescing failed: {pooled_dump.devmem_reads} reads vs "
            f"{reference_dump.devmem_reads} per-page"
        )
    with spool.open(digest) as mapped:
        if bytes(mapped.data) != dump:
            failures.append("mmap-backed spool read diverged from slurped read")
        if nonzero_count(mapped.data) != nonzero_count(dump):
            failures.append("nonzero_count over mmap diverged from bytes")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path,
                        default=REPO_ROOT / "BENCH_analysis.json")
    parser.add_argument("--mib", type=float, default=4.0,
                        help="benchmark dump size in MiB (default 4)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing runs per path; best is kept")
    args = parser.parse_args()

    rng = np.random.default_rng(SEED)
    signatures = build_database(rng)
    database = SignatureDatabase(signatures)
    dump = build_dump(args.mib, signatures, rng)
    mib = len(dump) / (1024 * 1024)
    cartographer = DumpCartographer(core=ScanCore())
    print(f"bench dump: {mib:.2f} MiB, database: {MODELS} models x "
          f"{TOKENS_PER_MODEL} tokens")

    # The zero-copy scenarios: a real harvested heap for the
    # extraction lane, and the bench dump filed in a scratch spool for
    # the spool-read lane.
    session, harvested = build_extraction_scenario()
    devmem = session.attacker_shell.devmem_tool
    attacker = session.attacker_shell.user
    pool = BufferPool()
    pooled_scraper = MemoryScraper(
        devmem, attacker, AttackConfig(coalesce_reads=True), buffer_pool=pool
    )
    reference_scraper = MemoryScraper(
        devmem, attacker, AttackConfig(bulk_reads=True)
    )
    pooled_dump = pooled_scraper.scrape(harvested)
    reference_dump = reference_scraper.scrape(harvested)
    extraction_mib = reference_dump.nbytes / (1024 * 1024)

    spool_dir = tempfile.TemporaryDirectory(prefix="bench_spool_")
    spool = DumpSpool(Path(spool_dir.name) / "spool")
    entry = spool.put(
        ScrapedDump(pid=1, heap_start=0, data=dump,
                    pages_read=0, pages_skipped=0, devmem_reads=0)
    )

    failures = verify(dump, cartographer, database, rng)
    failures += verify_zero_copy(
        pooled_dump, reference_dump, spool, entry.sha256, dump
    )
    pooled_dump.release()
    if failures:
        for failure in failures:
            print(f"DIVERGENCE: {failure}", file=sys.stderr)
        print("bench_runner: fast paths diverged; refusing to record timings",
              file=sys.stderr)
        return 2
    print("verified: every fast path matches its reference implementation")

    map_fast, regions = best_of(args.repeats, cartographer.map_dump, dump)
    map_ref, _ = best_of(args.repeats, reference_map_dump, dump)
    id_fast, _ = best_of(args.repeats, database.match, dump)
    id_ref, _ = best_of(args.repeats, reference_match, database, dump)
    nz_fast, nonzero = best_of(args.repeats, nonzero_count, dump)
    nz_ref, _ = best_of(args.repeats, reference_nonzero_bytes, dump)

    def scrape_pooled() -> ScrapedDump:
        scraped = pooled_scraper.scrape(harvested)
        scraped.release()  # next repeat reuses the buffer, like a wave
        return scraped

    ext_fast, _ = best_of(args.repeats, scrape_pooled)
    ext_ref, _ = best_of(args.repeats, reference_scraper.scrape, harvested)

    def spool_mmap_read() -> int:
        with spool.open(entry.sha256) as mapped:
            return nonzero_count(mapped.data)

    def spool_slurp_read() -> int:
        return nonzero_count(spool.read(entry.sha256))

    spool_fast, _ = best_of(args.repeats, spool_mmap_read)
    spool_ref, _ = best_of(args.repeats, spool_slurp_read)

    # Campaign twins at 8 boards — the fleet size the auto policy
    # sends to processes.  Offline prep is shared attacker state,
    # identical for both executors (the multiprocess one ships the
    # mined database by value), so it is hoisted out of the timed
    # region; the multiprocess lane reuses one executor instance so
    # its persistent worker pool is measured at steady state, the way
    # an operator sweeping campaigns runs it.  Runs are paired
    # (threads then processes, back to back) and the speedup is the
    # median of per-pair ratios, so machine-load drift hits both lanes
    # alike instead of faking a regression either way.
    spec = CampaignSpec(boards=8, victims=32, seed=SEED % 10_000)
    campaign_profiles, campaign_database = prepare_offline(spec)
    threads_executor = InProcessExecutor()
    mp_executor = MultiprocessExecutor()

    def run_inprocess() -> object:
        return run_campaign(
            spec, profiles=campaign_profiles, database=campaign_database,
            executor=threads_executor,
        )

    def run_multiprocess() -> object:
        return run_campaign(
            spec, profiles=campaign_profiles, database=campaign_database,
            executor=mp_executor,
        )

    report = run_inprocess()  # warm caches
    mp_report = run_multiprocess()  # fork + warm the worker pool
    thread_walls: list[float] = []
    mp_walls: list[float] = []
    pair_ratios: list[float] = []
    for _ in range(args.repeats + 2):
        started = time.perf_counter()
        report = run_inprocess()
        thread_walls.append(time.perf_counter() - started)
        started = time.perf_counter()
        mp_report = run_multiprocess()
        mp_walls.append(time.perf_counter() - started)
        pair_ratios.append(thread_walls[-1] / mp_walls[-1])
    mp_executor.close()
    campaign_wall = statistics.median(thread_walls)
    mp_wall = statistics.median(mp_walls)
    mp_speedup = statistics.median(pair_ratios)
    throughput = report.throughput
    mp_throughput = mp_report.throughput

    # The distributed-fabric lane: the same spec served by a real
    # coordinator socket to FABRIC_WORKERS racing worker threads.  Its
    # ratio vs the in-process twin prices the protocol tax (framing,
    # dump upload, journal fsyncs) — recorded for the trajectory, never
    # gated: distribution buys fleet reach, not single-host speed.
    def run_fabric(run_dir: Path) -> object:
        coordinator = FabricCoordinator(
            spec, run_dir,
            prep=(campaign_profiles, campaign_database),
        )
        host, port = coordinator.serve()
        try:
            workers = [
                FabricWorker(
                    host, port, worker_id=f"bench{index}",
                    poll_interval=None, heartbeat=False,
                )
                for index in range(FABRIC_WORKERS)
            ]
            threads = [
                threading.Thread(target=worker.run) for worker in workers
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return coordinator.run_until_complete(timeout=300)
        finally:
            coordinator.close()

    fabric_walls: list[float] = []
    with tempfile.TemporaryDirectory(prefix="bench_fabric_") as fabric_tmp:
        run_fabric(Path(fabric_tmp) / "warm")  # warm the path
        for index in range(args.repeats):
            started = time.perf_counter()
            fabric_report = run_fabric(Path(fabric_tmp) / f"run{index}")
            fabric_walls.append(time.perf_counter() - started)
    fabric_wall = statistics.median(fabric_walls)

    # The explore lane: a bounded evolution through the real campaign
    # engine, recorded as generations/s.  One warm run first so the
    # fuzzlab's offline-prep cache is populated and the timed run
    # prices the search itself, not one-time profiling.  Trajectory
    # only, never gated — search throughput tracks campaign cost, and
    # the campaign lanes above already gate that.
    from repro.explore import EvolutionConfig, evolve

    explore_config = EvolutionConfig(
        seed=SEED % 1009, population=4, generations=3,
        elites=1, fitness="residue", profile="none", input_hw=16,
    )
    evolve(explore_config)  # warm the prep cache
    started = time.perf_counter()
    explore_result = evolve(explore_config)
    explore_wall = time.perf_counter() - started

    def lane(fast: float, reference: float, lane_mib: float = mib) -> dict:
        return {
            "fast_seconds": round(fast, 6),
            "reference_seconds": round(reference, 6),
            "fast_mib_per_s": round(lane_mib / fast, 2),
            "reference_mib_per_s": round(lane_mib / reference, 2),
            "speedup": round(reference / fast, 2),
        }

    payload = {
        "generated_by": "tools/bench_runner.py (make bench-json)",
        "verified": True,
        "dump": {
            "mib": round(mib, 3),
            "seed": SEED,
            "regions": len(regions),
            "nonzero_bytes": nonzero,
        },
        "database": {"models": MODELS, "tokens": MODELS * TOKENS_PER_MODEL},
        "map_dump": lane(map_fast, map_ref),
        "identify": lane(id_fast, id_ref),
        "nonzero": lane(nz_fast, nz_ref),
        "extraction": {
            **lane(ext_fast, ext_ref, extraction_mib),
            "dump_mib": round(extraction_mib, 3),
            "pool_reuses": pool.reuses,
            "coalesced_devmem_reads": pooled_dump.devmem_reads,
            "per_page_devmem_reads": reference_dump.devmem_reads,
        },
        "spool_read": {
            **lane(spool_fast, spool_ref),
            "mode": "mmap vs slurp, nonzero scored",
        },
        "campaign": {
            "boards": spec.boards,
            "victims": throughput.victims,
            "wall_seconds": round(campaign_wall, 3),
            "victims_per_second": round(throughput.victims_per_second, 3),
            "mib_per_second": round(
                throughput.bytes_per_second / (1024 * 1024), 2
            ),
        },
        "campaign_multiprocess": {
            "boards": spec.boards,
            "victims": mp_throughput.victims,
            "persistent_pool": True,
            "wall_seconds": round(mp_wall, 3),
            "victims_per_second": round(
                mp_throughput.victims_per_second, 3
            ),
            "mib_per_second": round(
                mp_throughput.bytes_per_second / (1024 * 1024), 2
            ),
            "speedup_vs_inprocess": round(mp_speedup, 2),
        },
        "campaign_fabric": {
            "boards": spec.boards,
            "victims": fabric_report.victims,
            "workers": FABRIC_WORKERS,
            "wall_seconds": round(fabric_wall, 3),
            "victims_per_second": round(
                fabric_report.victims / fabric_wall, 3
            ),
            "ratio_vs_inprocess": round(campaign_wall / fabric_wall, 2),
        },
        "explore": {
            "population": explore_config.population,
            "generations": explore_config.generations,
            "wall_seconds": round(explore_wall, 3),
            "generations_per_second": round(
                explore_config.generations / explore_wall, 3
            ),
            "evaluations": explore_result.evaluations,
            "cache_hits": explore_result.cache_hits,
            "best_score": explore_result.best[0],
        },
    }
    spool_dir.cleanup()
    mp_speedup = payload["campaign_multiprocess"]["speedup_vs_inprocess"]
    if mp_speedup < 1.0:
        print(
            f"REGRESSION: multiprocess executor is slower than in-process "
            f"({mp_speedup}x at {spec.boards} boards); refusing to record",
            file=sys.stderr,
        )
        return 2
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"map_dump : {payload['map_dump']['speedup']:>7.2f}x "
          f"({payload['map_dump']['fast_mib_per_s']} MiB/s)")
    print(f"identify : {payload['identify']['speedup']:>7.2f}x "
          f"({payload['identify']['fast_mib_per_s']} MiB/s)")
    print(f"nonzero  : {payload['nonzero']['speedup']:>7.2f}x")
    print(f"extraction: {payload['extraction']['speedup']:>6.2f}x "
          f"({payload['extraction']['fast_mib_per_s']} MiB/s pooled coalesced)")
    print(f"spool_read: {payload['spool_read']['speedup']:>6.2f}x "
          f"({payload['spool_read']['fast_mib_per_s']} MiB/s mmap)")
    print(f"campaign : {payload['campaign']['victims_per_second']} victims/s")
    print(f"campaign (multiprocess): "
          f"{payload['campaign_multiprocess']['victims_per_second']} victims/s "
          f"({payload['campaign_multiprocess']['speedup_vs_inprocess']}x vs "
          f"in-process)")
    print(f"campaign (fabric, {FABRIC_WORKERS} workers): "
          f"{payload['campaign_fabric']['victims_per_second']} victims/s "
          f"({payload['campaign_fabric']['ratio_vs_inprocess']}x vs "
          f"in-process)")
    print(f"explore  : {payload['explore']['generations_per_second']} "
          f"generations/s ({payload['explore']['evaluations']} campaign "
          f"evaluations)")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
