#!/usr/bin/env python3
"""The ``make docs-check`` gate: docstrings, links, and live examples.

Four invariants, enforced so the documentation surface cannot rot
silently as the codebase grows:

1. every Python module under ``src/repro`` (packages included) carries
   a module docstring;
2. every package directory under ``src/repro`` appears in README.md's
   package map table as ``repro.<name>`` — and, conversely, every
   ``repro.<name>`` the map mentions resolves to a real package or
   module;
3. every relative link in README.md and ``docs/*.md`` points at a file
   or directory that actually exists (external ``http(s)`` links and
   pure ``#anchors`` are out of scope);
4. the usage examples in the docstrings of :data:`DOCTESTED_MODULES`
   execute cleanly (``doctest``), so the documented attack and defense
   walkthroughs stay runnable.

Exit status 0 = clean; 1 = violations (each printed on its own line).
"""

from __future__ import annotations

import ast
import doctest
import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
README = REPO_ROOT / "README.md"
DOCS_DIR = REPO_ROOT / "docs"

DOCTESTED_MODULES = (
    "repro.attack.variants",
    "repro.attack.weights",
    "repro.campaign",
    "repro.campaign.engine",
    "repro.defense",
    "repro.defense.profiles",
    "repro.petalinux.sanitizer",
    "repro.petalinux.xen",
)
"""Modules whose docstring examples must actually run.  Docstrings
elsewhere may carry illustrative (non-self-contained) snippets; these
are the documented walkthroughs the docs link to."""

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def missing_docstrings() -> list[str]:
    """Modules under src/repro without a module docstring."""
    failures = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        if ast.get_docstring(tree) is None:
            failures.append(
                f"{path.relative_to(REPO_ROOT)}: missing module docstring"
            )
    return failures


def _package_map_rows() -> list[str]:
    if not README.exists():
        return []
    return [
        line
        for line in README.read_text().splitlines()
        if line.lstrip().startswith("|")
    ]


def missing_from_package_map() -> list[str]:
    """Packages under src/repro absent from README.md's package map.

    Only the map's table rows count — a prose mention elsewhere in the
    README does not satisfy the check.
    """
    if not README.exists():
        return ["README.md does not exist"]
    table_rows = _package_map_rows()
    failures = []
    for entry in sorted(SRC_ROOT.iterdir()):
        if not entry.is_dir() or not (entry / "__init__.py").exists():
            continue
        dotted = f"`repro.{entry.name}`"
        if not any(dotted in row for row in table_rows):
            failures.append(
                f"README.md package map is missing {dotted}"
            )
    return failures


def stale_package_map_entries() -> list[str]:
    """Package-map rows naming a ``repro.<name>`` that no longer exists."""
    failures = []
    for row in _package_map_rows():
        for name in re.findall(r"`repro\.(\w+)`", row):
            if not (
                (SRC_ROOT / name).is_dir() or (SRC_ROOT / f"{name}.py").exists()
            ):
                failures.append(
                    f"README.md package map names `repro.{name}` but "
                    f"src/repro/{name} does not exist"
                )
    return failures


def broken_links() -> list[str]:
    """Relative markdown links that resolve to nothing on disk."""
    failures = []
    documents = [README] + sorted(DOCS_DIR.glob("*.md"))
    for document in documents:
        if not document.exists():
            continue
        for target in _LINK.findall(document.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (document.parent / relative).exists():
                failures.append(
                    f"{document.relative_to(REPO_ROOT)}: broken link "
                    f"-> {target}"
                )
    return failures


def failing_doctests() -> list[str]:
    """Allowlisted modules whose docstring examples do not run clean."""
    sys.path.insert(0, str(SRC_ROOT.parent))
    failures = []
    for name in DOCTESTED_MODULES:
        try:
            module = importlib.import_module(name)
        except Exception as error:  # noqa: BLE001 — report, don't crash
            failures.append(f"{name}: import failed: {error}")
            continue
        results = doctest.testmod(module, verbose=False)
        if results.failed:
            failures.append(
                f"{name}: {results.failed} of {results.attempted} "
                f"docstring example(s) failed"
            )
        elif results.attempted == 0:
            failures.append(
                f"{name}: listed in DOCTESTED_MODULES but has no "
                f"docstring examples"
            )
    return failures


def main() -> int:
    failures = (
        missing_docstrings()
        + missing_from_package_map()
        + stale_package_map_entries()
        + broken_links()
        + failing_doctests()
    )
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"docs-check: {len(failures)} problem(s)", file=sys.stderr)
        return 1
    print(
        "docs-check: modules documented, package map complete, "
        "links resolve, docstring examples run"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
