#!/usr/bin/env python3
"""The ``make docs-check`` gate: docstrings, links, and live examples.

Six invariants, enforced so the documentation surface cannot rot
silently as the codebase grows:

1. every Python module under ``src/repro`` (packages included) carries
   a module docstring;
2. every package directory under ``src/repro`` appears in README.md's
   package map table as ``repro.<name>`` — and, conversely, every
   ``repro.<name>`` the map mentions resolves to a real package or
   module;
3. every relative link in README.md and ``docs/*.md`` points at a file
   or directory that actually exists (external ``http(s)`` links are
   out of scope);
4. every ``#fragment`` in a relative or same-document link resolves to
   a real heading of the target markdown file (GitHub slug rules,
   duplicate-heading ``-1``/``-2`` suffixes included);
5. ``docs/cli.md`` matches what ``tools/gen_cli_docs.py`` generates
   from the live argparse tree — the CLI reference cannot drift from
   ``src/repro/cli.py``;
6. the usage examples in the docstrings of :data:`DOCTESTED_MODULES`
   execute cleanly (``doctest``), so the documented attack, defense,
   and campaign walkthroughs stay runnable.

Exit status 0 = clean; 1 = violations (each printed on its own line).
"""

from __future__ import annotations

import ast
import doctest
import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
README = REPO_ROOT / "README.md"
DOCS_DIR = REPO_ROOT / "docs"

DOCTESTED_MODULES = (
    "repro.attack.variants",
    "repro.attack.weights",
    "repro.campaign",
    "repro.campaign.engine",
    "repro.campaign.report",
    "repro.campaign.runtime.spool",
    "repro.campaign.schedule",
    "repro.defense",
    "repro.defense.profiles",
    "repro.fuzzlab",
    "repro.fuzzlab.scenario",
    "repro.petalinux.sanitizer",
    "repro.petalinux.xen",
)
"""Modules whose docstring examples must actually run.  Docstrings
elsewhere may carry illustrative (non-self-contained) snippets; these
are the documented walkthroughs the docs link to."""

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def missing_docstrings() -> list[str]:
    """Modules under src/repro without a module docstring."""
    failures = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        if ast.get_docstring(tree) is None:
            failures.append(
                f"{path.relative_to(REPO_ROOT)}: missing module docstring"
            )
    return failures


def _package_map_rows() -> list[str]:
    if not README.exists():
        return []
    return [
        line
        for line in README.read_text().splitlines()
        if line.lstrip().startswith("|")
    ]


def missing_from_package_map() -> list[str]:
    """Packages under src/repro absent from README.md's package map.

    Only the map's table rows count — a prose mention elsewhere in the
    README does not satisfy the check.
    """
    if not README.exists():
        return ["README.md does not exist"]
    table_rows = _package_map_rows()
    failures = []
    for entry in sorted(SRC_ROOT.iterdir()):
        if not entry.is_dir() or not (entry / "__init__.py").exists():
            continue
        dotted = f"`repro.{entry.name}`"
        if not any(dotted in row for row in table_rows):
            failures.append(
                f"README.md package map is missing {dotted}"
            )
    return failures


def stale_package_map_entries() -> list[str]:
    """Package-map rows naming a ``repro.<name>`` that no longer exists."""
    failures = []
    for row in _package_map_rows():
        for name in re.findall(r"`repro\.(\w+)`", row):
            if not (
                (SRC_ROOT / name).is_dir() or (SRC_ROOT / f"{name}.py").exists()
            ):
                failures.append(
                    f"README.md package map names `repro.{name}` but "
                    f"src/repro/{name} does not exist"
                )
    return failures


def heading_slug(title: str) -> str:
    """The GitHub anchor slug one heading title produces.

    GitHub slugs a heading by lowercasing it, dropping every character
    that is not alphanumeric, space, hyphen, or underscore, and turning
    spaces into hyphens; inline markup (backticks, bold, links)
    contributes only its text.  Shared with ``gen_cli_docs.py`` so the
    anchors the CLI reference *emits* are judged by the same rules this
    gate *validates* with.
    """
    title = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", title.strip())
    title = title.replace("`", "").replace("*", "")
    return "".join(
        "-" if char in (" ", "-") else char
        for char in title.lower()
        if char.isalnum() or char in (" ", "-", "_")
    )


def _heading_anchors(document: Path) -> set[str]:
    """Every anchor slug *document*'s headings produce.

    A repeated heading gets ``-1``, ``-2``, … suffixes; headings
    inside fenced code blocks do not count.
    """
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in document.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence or not re.match(r"^#{1,6}\s", line):
            continue
        slug = heading_slug(line.lstrip("#"))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def broken_links() -> list[str]:
    """Relative links that resolve to nothing — file or ``#anchor``.

    A target like ``campaigns.md#the-journal`` must both exist on disk
    and contain a heading whose GitHub slug is ``the-journal``; a bare
    ``#anchor`` is checked against the linking document itself.
    """
    failures = []
    documents = [README] + sorted(DOCS_DIR.glob("*.md"))
    for document in documents:
        if not document.exists():
            continue
        for target in _LINK.findall(document.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            relative, _, fragment = target.partition("#")
            destination = (
                document if not relative else document.parent / relative
            )
            if relative and not destination.exists():
                failures.append(
                    f"{document.relative_to(REPO_ROOT)}: broken link "
                    f"-> {target}"
                )
                continue
            if not fragment:
                continue
            if destination.is_dir() or destination.suffix != ".md":
                continue  # anchors only mean something in markdown
            if fragment not in _heading_anchors(destination):
                failures.append(
                    f"{document.relative_to(REPO_ROOT)}: broken anchor "
                    f"-> {target} (no heading slugs to #{fragment})"
                )
    return failures


def stale_cli_reference() -> list[str]:
    """Whether docs/cli.md matches the live argparse tree."""
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import gen_cli_docs
    except Exception as error:  # noqa: BLE001 — report, don't crash
        return [f"tools/gen_cli_docs.py failed to import: {error}"]
    reference = DOCS_DIR / "cli.md"
    if not reference.exists():
        return ["docs/cli.md does not exist (python tools/gen_cli_docs.py)"]
    if reference.read_text() != gen_cli_docs.generate():
        return [
            "docs/cli.md is stale — regenerate with: "
            "python tools/gen_cli_docs.py"
        ]
    return []


def failing_doctests() -> list[str]:
    """Allowlisted modules whose docstring examples do not run clean."""
    sys.path.insert(0, str(SRC_ROOT.parent))
    failures = []
    for name in DOCTESTED_MODULES:
        try:
            module = importlib.import_module(name)
        except Exception as error:  # noqa: BLE001 — report, don't crash
            failures.append(f"{name}: import failed: {error}")
            continue
        results = doctest.testmod(module, verbose=False)
        if results.failed:
            failures.append(
                f"{name}: {results.failed} of {results.attempted} "
                f"docstring example(s) failed"
            )
        elif results.attempted == 0:
            failures.append(
                f"{name}: listed in DOCTESTED_MODULES but has no "
                f"docstring examples"
            )
    return failures


def main() -> int:
    failures = (
        missing_docstrings()
        + missing_from_package_map()
        + stale_package_map_entries()
        + broken_links()
        + stale_cli_reference()
        + failing_doctests()
    )
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"docs-check: {len(failures)} problem(s)", file=sys.stderr)
        return 1
    print(
        "docs-check: modules documented, package map complete, links "
        "and anchors resolve, CLI reference current, docstring "
        "examples run"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
