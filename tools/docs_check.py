#!/usr/bin/env python3
"""The ``make docs-check`` gate: docstring and README-map coverage.

Two invariants, enforced so the documentation surface cannot rot
silently as the codebase grows:

1. every Python module under ``src/repro`` (packages included) carries
   a module docstring;
2. every package directory under ``src/repro`` appears in README.md's
   package map table as ``repro.<name>``.

Exit status 0 = clean; 1 = violations (each printed on its own line).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
README = REPO_ROOT / "README.md"


def missing_docstrings() -> list[str]:
    """Modules under src/repro without a module docstring."""
    failures = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        if ast.get_docstring(tree) is None:
            failures.append(
                f"{path.relative_to(REPO_ROOT)}: missing module docstring"
            )
    return failures


def missing_from_package_map() -> list[str]:
    """Packages under src/repro absent from README.md's package map.

    Only the map's table rows count — a prose mention elsewhere in the
    README does not satisfy the check.
    """
    if not README.exists():
        return ["README.md does not exist"]
    table_rows = [
        line
        for line in README.read_text().splitlines()
        if line.lstrip().startswith("|")
    ]
    failures = []
    for entry in sorted(SRC_ROOT.iterdir()):
        if not entry.is_dir() or not (entry / "__init__.py").exists():
            continue
        dotted = f"`repro.{entry.name}`"
        if not any(dotted in row for row in table_rows):
            failures.append(
                f"README.md package map is missing {dotted}"
            )
    return failures


def main() -> int:
    failures = missing_docstrings() + missing_from_package_map()
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"docs-check: {len(failures)} problem(s)", file=sys.stderr)
        return 1
    print("docs-check: all modules documented, package map complete")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
