#!/usr/bin/env python3
"""The ``make fabric-smoke`` lane: a distributed kill drill, end to end.

Everything here runs as *real operating-system processes* talking over
a real localhost socket — the same commands an operator types, so the
lane covers the CLI plumbing the in-process chaos tests cannot:

1. ``repro campaign run``   — the single-host reference report;
2. ``repro campaign serve`` — a coordinator on an ephemeral port with
   a short lease TTL;
3. a worker started with ``--die-after-waves 1`` — the scripted kill:
   it claims a board shard, ships one wave, and dies mid-board
   (exit 3) still holding its lease;
4. two clean ``repro campaign work`` processes that poll, wait out the
   dead worker's lease, pick up the re-issued shard, and finish the
   campaign between them.

The drill passes iff the coordinator exits 0 and the distributed
``report.json`` is **byte-identical** to the single-host reference —
the contract the whole fabric exists to keep.

Exit status: 0 = byte-identical, 1 = drill failed (divergent reports,
a process that would not die or converge), with every subprocess's
output replayed to stderr for triage.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SPEC_FLAGS = ["--boards", "3", "--victims", "12", "--seed", "7"]
LEASE_TTL = "5"
"""Short enough that waiting out the dead worker's lease costs the
lane seconds, long enough that a loaded CI box cannot expire a *live*
worker between its own waves."""

SERVE_TIMEOUT = 180.0
"""Hard wall for the whole drill; the coordinator also enforces it."""


def _run(argv: list[str], **kwargs) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        **kwargs,
    )


def _report(label: str, process: subprocess.Popen, output: str) -> None:
    print(f"--- {label} (exit {process.returncode}) ---", file=sys.stderr)
    print(output.rstrip() or "<no output>", file=sys.stderr)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="fabric_smoke_") as tmp:
        tmp_path = Path(tmp)
        failures: list[str] = []

        # 1. Single-host reference.
        reference_dir = tmp_path / "reference"
        reference = _run(
            ["campaign", "run", "--run-dir", str(reference_dir), *SPEC_FLAGS]
        )
        ref_output, _ = reference.communicate(timeout=SERVE_TIMEOUT)
        if reference.returncode != 0:
            _report("reference run", reference, ref_output)
            print("fabric-smoke: reference run failed", file=sys.stderr)
            return 1

        # 2. The coordinator, on an ephemeral port.
        fabric_dir = tmp_path / "fabric"
        serve = _run(
            [
                "campaign", "serve",
                "--run-dir", str(fabric_dir),
                "--port", "0",
                "--lease-ttl", LEASE_TTL,
                "--timeout", str(int(SERVE_TIMEOUT)),
                *SPEC_FLAGS,
            ]
        )
        assert serve.stdout is not None
        banner = serve.stdout.readline()
        if "listening on" not in banner:
            serve.kill()
            output, _ = serve.communicate()
            _report("coordinator", serve, banner + output)
            print("fabric-smoke: coordinator never came up", file=sys.stderr)
            return 1
        address = banner.rsplit(" ", 1)[-1].strip()
        print(f"coordinator up at {address}")

        # 3. The scripted kill: one wave, then death mid-board.
        casualty = _run(
            [
                "campaign", "work", address,
                "--name", "casualty",
                "--no-wait",
                "--die-after-waves", "1",
            ]
        )
        casualty_output, _ = casualty.communicate(timeout=SERVE_TIMEOUT)
        _report("casualty worker", casualty, casualty_output)
        if casualty.returncode != 3:
            failures.append(
                f"scripted kill exited {casualty.returncode}, expected 3"
            )

        # 4. Two clean workers race the remaining shards and, once the
        # dead worker's lease expires, the re-issued one.
        started = time.monotonic()
        workers = [
            _run(["campaign", "work", address, "--name", f"w{index}"])
            for index in (1, 2)
        ]
        for index, worker in enumerate(workers, start=1):
            output, _ = worker.communicate(timeout=SERVE_TIMEOUT)
            _report(f"worker w{index}", worker, output)
            # Exit 2 (coordinator already finished and closed) is a
            # benign race for whichever worker polled last.
            if worker.returncode not in (0, 2):
                failures.append(
                    f"worker w{index} exited {worker.returncode}"
                )
        serve_output, _ = serve.communicate(timeout=SERVE_TIMEOUT)
        _report("coordinator", serve, serve_output)
        print(
            f"drill converged in "
            f"{time.monotonic() - started:.1f}s after the kill"
        )
        if serve.returncode != 0:
            failures.append(f"coordinator exited {serve.returncode}")

        # 5. The contract: byte-identical reports.
        reference_bytes = (reference_dir / "report.json").read_bytes()
        fabric_bytes = (fabric_dir / "report.json").read_bytes()
        if fabric_bytes != reference_bytes:
            failures.append(
                f"distributed report ({len(fabric_bytes)} bytes) diverges "
                f"from single-host reference ({len(reference_bytes)} bytes)"
            )

        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            "fabric-smoke: PASS — worker killed mid-board, shard "
            "re-leased, report byte-identical to single host"
        )
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
