#!/usr/bin/env python3
"""The ``make fabric-smoke`` lane: a distributed chaos drill, end to end.

Everything here runs as *real operating-system processes* talking over
a real localhost socket — the same commands an operator types, so the
lane covers the CLI plumbing the in-process chaos tests cannot:

1. ``repro campaign run``   — the single-host reference report;
2. ``repro campaign serve`` — a coordinator on an ephemeral port with
   a short lease TTL;
3. a worker started with ``--die-after-waves 1`` — the scripted kill:
   it claims a board shard, ships one wave, and dies mid-board
   (exit 3) still holding its lease;
4. the coordinator itself is killed (SIGTERM) mid-campaign and
   restarted with ``--resume`` on the *same port* — completed boards
   are reused from the journal, outstanding leases are forgotten, and
   the ``leases.json`` epoch watermarks fence every pre-restart token;
5. two clean ``repro campaign work`` processes finish the campaign —
   one of them through a :class:`FlakyProxy` that drops its connection
   on scripted requests, forcing the ``--retry-*`` reconnect-and-
   replay path.

The drill passes iff the resumed coordinator exits 0, every scripted
fault actually fired, and the distributed ``report.json`` is
**byte-identical** to the single-host reference — the contract the
whole fabric exists to keep.

Exit status: 0 = byte-identical, 1 = drill failed (divergent reports,
a process that would not die or converge), with every subprocess's
output replayed to stderr for triage.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign.runtime.netchaos import ChaosScript, FlakyProxy  # noqa: E402

SPEC_FLAGS = ["--boards", "3", "--victims", "12", "--seed", "7"]
LEASE_TTL = "5"
"""Short enough that waiting out the dead worker's lease costs the
lane seconds, long enough that a loaded CI box cannot expire a *live*
worker between its own waves."""

SERVE_TIMEOUT = 180.0
"""Hard wall for the whole drill; the coordinator also enforces it."""

RETRY_FLAGS = [
    "--retry-attempts", "10",
    "--retry-base", "0.05",
    "--retry-cap", "0.5",
]
"""Self-healing knobs for the proxy-fronted worker: enough budget to
ride out every scripted drop without stretching the lane."""


def _run(argv: list[str], **kwargs) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        **kwargs,
    )


def _report(label: str, process: subprocess.Popen, output: str) -> None:
    print(f"--- {label} (exit {process.returncode}) ---", file=sys.stderr)
    print(output.rstrip() or "<no output>", file=sys.stderr)


def _serve(extra: list[str]) -> tuple[subprocess.Popen, str] | None:
    """Start a coordinator; returns (process, address) or None."""
    serve = _run(
        [
            "campaign", "serve",
            "--lease-ttl", LEASE_TTL,
            "--timeout", str(int(SERVE_TIMEOUT)),
            *extra,
        ]
    )
    assert serve.stdout is not None
    banner = serve.stdout.readline()
    if "listening on" not in banner:
        serve.kill()
        output, _ = serve.communicate()
        _report("coordinator", serve, banner + output)
        return None
    return serve, banner.rsplit(" ", 1)[-1].strip()


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="fabric_smoke_") as tmp:
        tmp_path = Path(tmp)
        failures: list[str] = []

        # 1. Single-host reference.
        reference_dir = tmp_path / "reference"
        reference = _run(
            ["campaign", "run", "--run-dir", str(reference_dir), *SPEC_FLAGS]
        )
        ref_output, _ = reference.communicate(timeout=SERVE_TIMEOUT)
        if reference.returncode != 0:
            _report("reference run", reference, ref_output)
            print("fabric-smoke: reference run failed", file=sys.stderr)
            return 1

        # 2. The coordinator, on an ephemeral port.
        fabric_dir = tmp_path / "fabric"
        started_serve = _serve(
            ["--run-dir", str(fabric_dir), "--port", "0", *SPEC_FLAGS]
        )
        if started_serve is None:
            print("fabric-smoke: coordinator never came up", file=sys.stderr)
            return 1
        serve, address = started_serve
        print(f"coordinator up at {address}")
        port = address.rsplit(":", 1)[-1]

        # 3. The scripted worker kill: one wave, then death mid-board.
        casualty = _run(
            [
                "campaign", "work", address,
                "--name", "casualty",
                "--no-wait",
                "--die-after-waves", "1",
            ]
        )
        casualty_output, _ = casualty.communicate(timeout=SERVE_TIMEOUT)
        _report("casualty worker", casualty, casualty_output)
        if casualty.returncode != 3:
            failures.append(
                f"scripted kill exited {casualty.returncode}, expected 3"
            )

        # 4. The coordinator kill: SIGTERM mid-campaign, then resume
        # the same run directory on the same port.  Completed boards
        # are reused from the journal; the dead worker's lease is
        # simply forgotten (and its epoch fenced via leases.json).
        serve.send_signal(signal.SIGTERM)
        serve_output, _ = serve.communicate(timeout=SERVE_TIMEOUT)
        _report("coordinator (killed)", serve, serve_output)
        if serve.returncode == 0:
            failures.append(
                "coordinator exited 0 before the campaign finished"
            )
        restarted = _serve(
            ["--resume", str(fabric_dir), "--port", port]
        )
        if restarted is None:
            print(
                "fabric-smoke: resumed coordinator never came up",
                file=sys.stderr,
            )
            return 1
        serve, resumed_address = restarted
        print(f"coordinator resumed at {resumed_address}")
        if resumed_address != address:
            failures.append(
                f"resumed coordinator at {resumed_address}, "
                f"expected {address}"
            )

        # 5. Two clean workers finish the campaign — one through a
        # flaky proxy that drops scripted requests, forcing the
        # --retry-* reconnect-and-replay path.
        host = address.rsplit(":", 1)[0]
        proxy = FlakyProxy(
            (host, int(port)),
            script=ChaosScript(drop_after_requests=(3, 7, 11)),
        )
        proxy_host, proxy_port = proxy.start()
        started = time.monotonic()
        try:
            workers = [
                _run(
                    [
                        "campaign", "work",
                        f"{proxy_host}:{proxy_port}",
                        "--name", "flaky",
                        *RETRY_FLAGS,
                    ]
                ),
                _run(["campaign", "work", address, "--name", "clean"]),
            ]
            for label, worker in zip(("flaky", "clean"), workers):
                output, _ = worker.communicate(timeout=SERVE_TIMEOUT)
                _report(f"worker {label}", worker, output)
                # Exit 2 (coordinator already finished and closed) is
                # a benign race for whichever worker polled last.
                if worker.returncode not in (0, 2):
                    failures.append(
                        f"worker {label} exited {worker.returncode}"
                    )
            serve_output, _ = serve.communicate(timeout=SERVE_TIMEOUT)
            _report("coordinator (resumed)", serve, serve_output)
        finally:
            stats = proxy.stats()
            proxy.close()
        print(
            f"drill converged in "
            f"{time.monotonic() - started:.1f}s after the restart; "
            f"proxy injected {stats['drops_injected']} drop(s) over "
            f"{stats['connections']} connection(s)"
        )
        if serve.returncode != 0:
            failures.append(
                f"resumed coordinator exited {serve.returncode}"
            )
        if stats["drops_injected"] < 1:
            failures.append(
                "the flaky proxy never dropped a request — the "
                "self-healing path went unexercised"
            )

        # 6. The contract: byte-identical reports.
        reference_bytes = (reference_dir / "report.json").read_bytes()
        fabric_bytes = (fabric_dir / "report.json").read_bytes()
        if fabric_bytes != reference_bytes:
            failures.append(
                f"distributed report ({len(fabric_bytes)} bytes) diverges "
                f"from single-host reference ({len(reference_bytes)} bytes)"
            )

        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            "fabric-smoke: PASS — worker killed mid-board, coordinator "
            "killed and resumed on the same port, one worker healed "
            "through a flaky proxy, report byte-identical to single host"
        )
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
