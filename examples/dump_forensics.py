#!/usr/bin/env python3
"""Forensic characterization of a terminated process's residue.

Paper contribution 4 is "a methodology for characterizing terminated
processes and accessing their private data".  This example plays the
analyst: scrape a victim's heap, map the dump into regions by byte
statistics alone (no profiles), then show how each region kind guides
the targeted extraction steps.

Run:  python examples/dump_forensics.py
"""

from repro.attack import DumpCartographer, MemoryScrapingAttack, RegionKind
from repro.evaluation.scenarios import BoardSession
from repro.utils.strings import extract_strings
from repro.vitis import Image

INPUT_HW = 32
MODEL = "resnet50_pt"


def main() -> None:
    session = BoardSession.boot(input_hw=INPUT_HW)
    profiles = session.profile([MODEL])

    secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=7).corrupted(0.25)
    victim = session.victim_application().launch(MODEL, image=secret)
    attack = MemoryScrapingAttack(session.attacker_shell, profiles)
    report = attack.execute(MODEL, terminate_victim=victim.terminate)
    dump = report.dump

    cartographer = DumpCartographer()
    regions = cartographer.map_dump(dump.data)
    print(f"scraped {dump.nbytes} bytes from pid {report.sighting.pid}; "
          f"mapped into {len(regions)} regions:\n")
    print(cartographer.render(regions, limit=25))

    totals = cartographer.kind_totals(regions)
    print("\nbytes per kind:")
    for kind in RegionKind:
        print(f"  {kind.value:<10} {totals[kind]:>8}")

    # Each kind points the analyst at a different extraction step.
    print("\nanalyst actions per region kind:")
    text_bytes = b"".join(
        dump.data[region.start : region.end]
        for region in regions
        if region.kind is RegionKind.TEXT
    )
    interesting = [
        hit.text
        for hit in extract_strings(text_bytes, minimum_length=12)
        if "/" in hit.text
    ]
    print(f"  TEXT      -> strings: {interesting[:3]}")

    quantized = [r for r in regions if r.kind is RegionKind.QUANTIZED]
    print(f"  QUANTIZED -> {len(quantized)} candidate weight buffers "
          f"({sum(r.length for r in quantized)} bytes) for WeightExtractor")

    constant = [r for r in regions if r.kind is RegionKind.CONSTANT]
    if constant:
        first = constant[0]
        print(f"  CONSTANT  -> marker block at {first.start:#x} "
              f"(the corrupted-image band of Fig. 12)")

    recovered = report.reconstruction.image
    print(f"\nreconstruction check: {recovered.pixel_match_rate(secret):.1%} "
          f"pixel match against the victim's input")


if __name__ == "__main__":
    main()
