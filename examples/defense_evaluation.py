#!/usr/bin/env python3
"""Defense ablation: which kernel hardening kills which attack step.

Sweeps the three PetaLinux holes the paper identifies (no sanitization,
world-readable pagemap/procfs, unrestricted /dev/mem) plus the two
randomization defenses, and shows the asynchronous scrub pool's window
of vulnerability.

Run:  python examples/defense_evaluation.py
"""

from repro.attack.addressing import AddressHarvester
from repro.attack.extraction import MemoryScraper
from repro.evaluation.scenarios import BoardSession, attack_under_config
from repro.petalinux.aslr import LayoutRandomization
from repro.petalinux.kernel import KernelConfig
from repro.petalinux.sanitizer import SanitizePolicy

INPUT_HW = 32

CONFIGS = [
    ("vulnerable default", KernelConfig()),
    ("zero-on-free", KernelConfig(sanitize_policy=SanitizePolicy.ZERO_ON_FREE)),
    ("pagemap lockdown", KernelConfig(pagemap_world_readable=False)),
    ("procfs lockdown", KernelConfig(procfs_world_readable=False)),
    ("STRICT_DEVMEM", KernelConfig(devmem_unrestricted=False)),
    (
        "physical ASLR only",
        KernelConfig(randomization=LayoutRandomization(physical=True, seed=3)),
    ),
    (
        "virtual ASLR only",
        KernelConfig(randomization=LayoutRandomization(virtual=True, seed=3)),
    ),
    ("fully hardened", KernelConfig().hardened()),
]


def defense_matrix() -> None:
    print(f"{'configuration':<22} {'steps done':<11} {'stopped at':<26} leaked?")
    print("-" * 70)
    for label, config in CONFIGS:
        outcome = attack_under_config(config, label, input_hw=INPUT_HW)
        print(
            f"{label:<22} {outcome.steps_completed:<11} "
            f"{outcome.failed_step or '-':<26} "
            f"{'YES' if outcome.attack_succeeded else 'no'}"
        )


def scrub_pool_window() -> None:
    """The async scrubber: how fast does the residue disappear?"""
    print()
    print("scrub-pool window of vulnerability (64 frames/tick):")
    for delay_ticks in (0, 1, 2, 4, 8):
        session = BoardSession.boot(
            config=KernelConfig(
                sanitize_policy=SanitizePolicy.SCRUB_POOL,
                scrub_rate_per_tick=64,
            ),
            input_hw=INPUT_HW,
        )
        run = session.victim_application().launch("resnet50_pt")
        harvester = AddressHarvester(
            session.attacker_shell.procfs, caller=session.attacker_shell.user
        )
        harvested = harvester.harvest(run.pid)
        run.terminate()
        session.kernel.tick(delay_ticks)
        scraper = MemoryScraper(
            session.attacker_shell.devmem_tool, session.attacker_shell.user
        )
        dump = scraper.scrape(harvested)
        nonzero = sum(1 for byte in dump.data if byte) / dump.nbytes
        print(
            f"  scrape {delay_ticks:>2} ticks after exit: "
            f"{nonzero:6.1%} of heap bytes still nonzero"
        )


def main() -> None:
    defense_matrix()
    scrub_pool_window()


if __name__ == "__main__":
    main()
