#!/usr/bin/env python3
"""Defense arena walkthrough: one fleet campaign per hardening profile.

Runs the identical 2-board, 6-victim campaign three times — undefended,
with synchronous zero-on-free scrubbing, and with the asynchronous
scrub pool composed with pinned Xen domains — and prints the resulting
leakage-vs-overhead matrix.  The ``none`` row reproduces the fleet
campaign's 100% success; the hardened rows show which axis buys what.

See docs/defenses.md for the full defense story and
``python -m repro defense sweep`` for the CLI version.

Run:  python examples/defense_sweep.py
"""

from repro.campaign import CampaignSpec
from repro.defense import defense_profile, run_defense_arena

SPEC = CampaignSpec(
    boards=2,
    victims=6,
    model_mix=("resnet50_pt", "squeezenet_pt"),
    tenants_per_board=2,
    wave_size=2,
    seed=2024,
)

PROFILES = ("none", "zero_on_free", "scrub_pool+pinned_xen")


def main() -> None:
    for name in PROFILES:
        profile = defense_profile(name)
        print(f"{profile.name}: {profile.describe()}")
    print()
    matrix = run_defense_arena(
        SPEC, profiles=PROFILES, scrape_delay_ticks=2, weight_theft=True
    )
    print(matrix.render())
    print()
    print("as markdown (for docs):")
    print(matrix.render_markdown())


if __name__ == "__main__":
    main()
