#!/usr/bin/env python3
"""Quickstart: the full memory scraping attack in ~40 lines.

Boots a simulated ZCU104 running PetaLinux, profiles the victim model
offline, launches a victim inference with a secret input image, and
runs the paper's four attack steps from a second user's terminal.

Run:  python examples/quickstart.py
"""

from repro.attack import MemoryScrapingAttack, OfflineProfiler
from repro.evaluation.scenarios import BoardSession
from repro.vitis import Image, VictimApplication

INPUT_HW = 32


def main() -> None:
    # A ZCU104 with the paper's two-terminal setup: the attacker on
    # pts/0, the victim on pts/1 — different non-root users.
    session = BoardSession.boot(input_hw=INPUT_HW)
    print(session.soc.board.describe())
    print()

    # Offline phase: the adversary profiles the Xilinx model library on
    # hardware they control, learning each model's image offset.
    profiler = OfflineProfiler(session.attacker_shell, input_hw=INPUT_HW)
    profiles = profiler.profile_library(
        ["resnet50_pt", "squeezenet_pt", "inception_v1_tf"]
    )
    resnet_profile = profiles.get("resnet50_pt")
    print(
        f"profiled resnet50_pt: image at heap offset "
        f"{resnet_profile.image_offset:#x} (hexdump row "
        f"{resnet_profile.hexdump_row})"
    )
    print()

    # The victim runs resnet50_pt on a private image (partially marked
    # with 0xFFFFFF, as in the paper's Fig. 4).
    secret_image = Image.test_pattern(INPUT_HW, INPUT_HW, seed=7).corrupted(0.2)
    victim = VictimApplication(session.victim_shell, input_hw=INPUT_HW).launch(
        "resnet50_pt", image=secret_image
    )
    print(f"victim running as pid {victim.pid}, top-5: {victim.result.top_k()}")
    print()

    # The attack: steps 1-2 while the victim lives, step 3 after it
    # terminates, step 4 on the scraped dump.
    attack = MemoryScrapingAttack(session.attacker_shell, profiles)
    report = attack.execute("resnet50_pt", terminate_victim=victim.terminate)
    print(report.render())
    print()

    recovered = report.reconstruction.image
    print(
        f"recovered image fidelity: "
        f"{recovered.pixel_match_rate(secret_image):.1%} pixel match"
    )


if __name__ == "__main__":
    main()
