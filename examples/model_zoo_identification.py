#!/usr/bin/env python3
"""Model identification across the whole Vitis AI library.

The paper identifies one victim model by grepping for its name; this
example profiles all eight zoo models, attacks a victim running each
one, and reports attribution accuracy plus the distinctive signature
tokens the offline profiling mined.

Run:  python examples/model_zoo_identification.py
"""

from repro.attack import MemoryScrapingAttack, SignatureDatabase
from repro.evaluation.scenarios import BoardSession
from repro.vitis.zoo import MODEL_NAMES

INPUT_HW = 32


def main() -> None:
    session = BoardSession.boot(input_hw=INPUT_HW)
    print(f"profiling {len(MODEL_NAMES)} models offline...")
    profiles = session.profile(list(MODEL_NAMES))

    database = SignatureDatabase.from_profiles(profiles)
    print()
    print("distinctive signature tokens per model (sample):")
    for name in MODEL_NAMES:
        tokens = sorted(database.signature(name).tokens)
        sample = ", ".join(tokens[:3])
        print(f"  {name:<18} {len(tokens):>3} tokens  e.g. {sample}")

    print()
    print(f"{'victim':<18} {'attributed as':<18} {'score':<7} image recovered")
    print("-" * 62)
    correct = 0
    for name in MODEL_NAMES:
        victim = session.victim_application().launch(name)
        attack = MemoryScrapingAttack(session.attacker_shell, profiles)
        report = attack.execute(name, terminate_victim=victim.terminate)
        identification = report.identification
        recovered = report.reconstruction is not None
        if identification.best_model == name:
            correct += 1
        print(
            f"{name:<18} {identification.best_model:<18} "
            f"{identification.scores[identification.best_model]:<7.2f} "
            f"{'yes' if recovered else 'no'}"
        )
    print("-" * 62)
    print(f"accuracy: {correct}/{len(MODEL_NAMES)}")


if __name__ == "__main__":
    main()
