#!/usr/bin/env python3
"""Multi-tenant FPGA: scraping a co-tenant and the scrubbing dilemma.

Two scenarios on one board:

1. **Cross-tenant scraping** — guest B attacks guest A's terminated
   inference job, exactly like the single-tenant attack (the paper
   notes the attack "works on both single-tenant and multi-tenant
   FPGAs").
2. **The sanitization dilemma (paper §I-B)** — contiguous-range
   initialization (RowClone/RowReset style) clears the dead tenant but
   wipes the live one's interleaved pages; per-page scrubbing is the
   safe variant.

Run:  python examples/multi_tenant_scraping.py
"""

from repro.attack import MemoryScrapingAttack, OfflineProfiler
from repro.evaluation.scenarios import (
    BoardSession,
    multi_tenant_scrub_experiment,
)
from repro.vitis import Image, VictimApplication

INPUT_HW = 32


def cross_tenant_attack() -> None:
    session = BoardSession.boot(input_hw=INPUT_HW)
    guest_b = session.add_tenant("guest_b", 1003, "pts/2")

    # Guest B preps offline from its own terminal.
    profiles = OfflineProfiler(guest_b, input_hw=INPUT_HW).profile_library(
        ["resnet50_pt", "mobilenet_v2_tf"]
    )

    # Guest A (the victim tenant) runs its inference job.
    secret = Image.test_pattern(INPUT_HW, INPUT_HW, seed=21)
    victim = VictimApplication(session.victim_shell, input_hw=INPUT_HW).launch(
        "mobilenet_v2_tf", image=secret
    )

    # Guest B mounts the scraping attack on guest A.
    attack = MemoryScrapingAttack(guest_b, profiles)
    report = attack.execute("mobilenet_v2_tf", terminate_victim=victim.terminate)
    recovered = report.reconstruction.image
    print("cross-tenant attack (guest_b -> guest_a):")
    print(f"  model attributed: {report.identification.best_model}")
    print(f"  image fidelity:   {recovered.pixel_match_rate(secret):.1%}")


def scrubbing_dilemma() -> None:
    print()
    print("sanitization strategies on a multi-tenant board:")
    print(f"  {'strategy':<20} {'dead tenant cleared':<21} live tenant intact")
    for outcome in multi_tenant_scrub_experiment(INPUT_HW):
        print(
            f"  {outcome.strategy:<20} "
            f"{'yes' if outcome.victim_residue_cleared else 'NO':<21} "
            f"{'yes' if outcome.cotenant_data_intact else 'NO  <- collateral damage'}"
        )


def main() -> None:
    cross_tenant_attack()
    scrubbing_dilemma()


if __name__ == "__main__":
    main()
