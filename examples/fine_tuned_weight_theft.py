#!/usr/bin/env python3
"""Stealing fine-tuned model weights from a terminated process.

The paper's contribution 5 mentions "revealing sensitive information
such as input images and weights".  Weights become valuable when the
victim runs a privately fine-tuned variant of a library model: the
architecture (and therefore the heap layout) is public, the weights
are not.  The adversary learns the weight-buffer offsets from the
stock model and lifts the victim's private weights from the residue.

Also demonstrates the pagemap-free attack variants, placing each
attack against the defense that stops it.

Run:  python examples/fine_tuned_weight_theft.py
"""

from repro.attack import (
    MemoryScrapingAttack,
    WeightExtractor,
    profile_weight_layout,
)
from repro.evaluation.scenarios import BoardSession
from repro.vitis.zoo import build_model, fine_tune

INPUT_HW = 32
MODEL = "resnet50_pt"


def main() -> None:
    session = BoardSession.boot(input_hw=INPUT_HW)

    # Offline: the adversary learns buffer offsets from the PUBLIC model.
    layout = profile_weight_layout(
        session.attacker_shell, MODEL, input_hw=INPUT_HW
    )
    print(f"profiled {len(layout.buffers)} weight buffers "
          f"({layout.total_nbytes()} bytes) from the stock {MODEL}")

    # The victim deploys a fine-tuned variant: private weights.
    stock = build_model(MODEL, input_hw=INPUT_HW)
    private = fine_tune(stock, seed=20240322)
    victim = session.victim_application().launch(MODEL, model=private)

    # The standard scraping pipeline captures the dump...
    profiles = session.profile([MODEL])
    attack = MemoryScrapingAttack(session.attacker_shell, profiles)
    report = attack.execute(MODEL, terminate_victim=victim.terminate)

    # ...and the weight extractor lifts the private weights out of it.
    extracted = WeightExtractor(layout).extract(report.dump)
    vs_private = extracted.match_fraction(private)
    vs_stock = extracted.match_fraction(stock)
    print()
    print(f"extracted weights vs victim's private model: {vs_private:.1%} match")
    print(f"extracted weights vs public library model:   {vs_stock:.1%} match")
    print()
    if vs_private == 1.0 and vs_stock < 0.5:
        print("the victim's fine-tuned weights were exfiltrated bit-exact.")
    else:
        raise SystemExit("extraction did not behave as expected")

    conv1 = extracted.layer("conv1")[0]
    print(f"sample: conv1 kernel shape {conv1.shape}, "
          f"first taps {conv1.ravel()[:6].tolist()}")


if __name__ == "__main__":
    main()
