#!/usr/bin/env python3
"""Fleet campaign: 4 boards, 10 victims, multi-tenant waves.

Scales the paper's one-board choreography to a small cloud-FPGA
region: the adversary profiles the model mix once, then a worker pool
attacks staggered waves of co-resident victims on every board
concurrently, scraping each wave's residue with coalesced devmem
reads.  The aggregated :class:`CampaignReport` is what a fleet-wide
remanence survey (Pentimento-style) would collect.

Run:  python examples/fleet_campaign.py
"""

from repro.campaign import CampaignSpec, build_schedule, run_campaign

SPEC = CampaignSpec(
    boards=4,
    victims=10,
    model_mix=(
        "resnet50_pt",
        "squeezenet_pt",
        "inception_v1_tf",
        "mobilenet_v2_tf",
    ),
    tenants_per_board=2,
    wave_size=2,
    seed=2024,
)


def main() -> None:
    # The schedule is a pure function of the spec — print it first so
    # the report below can be checked against it.
    print("schedule:")
    for job in build_schedule(SPEC):
        print(
            f"  job {job.job_id}: {job.model_name:<16} -> board "
            f"{job.board_index}, tenant {job.tenant_index}, "
            f"wave {job.launch_wave}"
        )
    print()

    report = run_campaign(SPEC)
    print(report.render())
    print()

    slowest = max(report.outcomes, key=lambda outcome: outcome.wall_seconds)
    print(
        f"slowest victim: job {slowest.job_id} ({slowest.model_name}) "
        f"at {slowest.wall_seconds * 1000:.0f} ms"
    )
    assert report.success_rate == 1.0, "fleet campaign should leak everywhere"


if __name__ == "__main__":
    main()
