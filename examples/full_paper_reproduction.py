#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation section (§V).

Runs the standard scenario once and prints the nine artifacts
(Figs. 4-12) with their qualitative claims checked, mirroring the
paper's step-by-step results narrative.

Run:  python examples/full_paper_reproduction.py
"""

from repro.evaluation.figures import generate_all_figures, render_figure_report


def main() -> None:
    figures = generate_all_figures(input_hw=32, victim_model="resnet50_pt")
    print(render_figure_report(figures))
    print()

    failing = [
        figure_id
        for figure_id, artifact in figures.items()
        if not artifact.all_claims_hold
    ]
    if failing:
        raise SystemExit(f"figures with failing claims: {failing}")
    print(f"all {len(figures)} figures reproduced; every claim holds.")


if __name__ == "__main__":
    main()
